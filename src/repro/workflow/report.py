"""Uniform result types of the composable workflow API.

Every :class:`repro.workflow.drivers.ExecutionDriver` — serial, threaded or
pipelined — returns the same two-level result: a :class:`WorkflowReport`
with the producer/trainer accounting (the schema the seed API already used)
wrapped in a :class:`RunResult` that adds driver metadata, per-consumer
summaries and any exceptions raised concurrently.  Callers therefore never
need to know which execution strategy drove the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class WorkflowReport:
    """Outcome of one coupled run."""

    n_steps: int
    iterations_streamed: int
    samples_streamed: int
    training_iterations: int
    bytes_streamed: int
    wall_time: float
    simulation_time: float
    training_time: float
    final_losses: Dict[str, float]
    loss_history_total: List[float] = field(default_factory=list)

    @property
    def streamed_megabytes(self) -> float:
        return self.bytes_streamed / 1e6

    def summary(self) -> Dict[str, object]:
        return {
            "steps": self.n_steps,
            "iterations_streamed": self.iterations_streamed,
            "samples_streamed": self.samples_streamed,
            "training_iterations": self.training_iterations,
            "streamed_megabytes": round(self.streamed_megabytes, 2),
            "wall_time_s": round(self.wall_time, 3),
            "simulation_time_s": round(self.simulation_time, 3),
            "training_time_s": round(self.training_time, 3),
            "final_total_loss": self.final_losses.get("total"),
        }


@dataclass
class RunResult:
    """What a driver hands back: the report plus how the run went.

    The producer and every consumer run under exception capture so that a
    failure on one side never silently swallows the other side's error —
    both are surfaced here (the historical behaviour of
    ``ThreadedWorkflowRunner`` was to drop the consumer exception when the
    producer also failed).
    """

    report: WorkflowReport
    driver: str
    max_queue_depth: int = 0
    queue_depth_samples: List[int] = field(default_factory=list)
    producer_exception: Optional[BaseException] = None
    consumer_exceptions: Dict[str, BaseException] = field(default_factory=dict)
    consumer_summaries: Dict[str, Dict[str, object]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.producer_exception is None and not self.consumer_exceptions

    def raise_if_failed(self) -> "RunResult":
        """Re-raise the first captured exception (producer first), if any."""
        if self.producer_exception is not None:
            raise self.producer_exception
        for error in self.consumer_exceptions.values():
            raise error
        return self

    def summary(self) -> Dict[str, object]:
        out = dict(self.report.summary())
        out["driver"] = self.driver
        out["max_queue_depth"] = self.max_queue_depth
        out["ok"] = self.ok
        return out
