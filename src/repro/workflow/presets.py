"""Named workflow configuration presets.

The seed code hand-built ``ModelConfig``/``WorkflowConfig`` literals in the
CLI, every example and every benchmark.  Presets give those one home:

* ``laptop``     — the package defaults: finishes in seconds, exercises
  every component of the full-scale workflow,
* ``cli-small``  — the slightly smaller configuration the CLI ``run``
  command has always used (64-point clouds, 16-dim spectra),
* ``bench-tiny`` — the benchmark-harness configuration (48-point clouds),
* ``paper``      — the full Section IV configuration (192×256×12 cells,
  30 000-point clouds, 544-dim latent); build-able anywhere, runnable only
  on real HPC resources.

Presets are factories: every call returns a fresh ``WorkflowConfig`` that
can be mutated (``dataclasses.replace``) without affecting later calls.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict

from repro.core.config import MLConfig, StreamingConfig, WorkflowConfig
from repro.models.config import ModelConfig, paper_config
from repro.pic.khi import KHIConfig


def _laptop() -> WorkflowConfig:
    return WorkflowConfig()


def _cli_small() -> WorkflowConfig:
    model = ModelConfig(n_input_points=64, encoder_channels=(16, 32),
                        encoder_head_hidden=32, latent_dim=32,
                        decoder_grid=(2, 2, 2), decoder_channels=(8, 6),
                        spectrum_dim=16, inn_blocks=2, inn_hidden=(32,))
    return WorkflowConfig(
        khi=KHIConfig(grid_shape=(8, 16, 2), particles_per_cell=4, seed=42),
        ml=MLConfig(model=model, n_rep=2, base_learning_rate=1e-3),
        streaming=StreamingConfig(queue_limit=2),
        region_counts=(1, 4, 1), n_detector_directions=2,
        n_detector_frequencies=8, seed=42)


def _bench_tiny() -> WorkflowConfig:
    # the CLI small-run shape with a smaller point cloud and its own seed
    base = _cli_small()
    return replace(base,
                   khi=replace(base.khi, seed=11),
                   ml=replace(base.ml,
                              model=replace(base.ml.model, n_input_points=48)),
                   seed=11)


def _paper() -> WorkflowConfig:
    # Section IV: smallest volume 192x256x12, 30k-point clouds, 544-dim
    # latent, base LR 1e-6, 128-dim spectra (8 directions x 16 frequencies).
    return WorkflowConfig(
        khi=KHIConfig.paper(),
        ml=MLConfig(model=paper_config(), n_rep=4, base_learning_rate=1e-6),
        streaming=StreamingConfig(queue_limit=2),
        region_counts=(1, 8, 1), n_detector_directions=8,
        n_detector_frequencies=16, seed=2024)


_PRESETS: Dict[str, Callable[[], WorkflowConfig]] = {
    "laptop": _laptop,
    "cli-small": _cli_small,
    "bench-tiny": _bench_tiny,
    "paper": _paper,
}


def available_presets() -> tuple:
    return tuple(sorted(_PRESETS))


def register_preset(name: str, factory: Callable[[], WorkflowConfig],
                    overwrite: bool = False) -> None:
    """Add a named preset (e.g. a site- or study-specific configuration)."""
    if name in _PRESETS and not overwrite:
        raise ValueError(f"preset {name!r} is already registered")
    _PRESETS[name] = factory


def get_preset(name: str) -> WorkflowConfig:
    """Build a fresh :class:`WorkflowConfig` for a named preset."""
    try:
        factory = _PRESETS[name]
    except KeyError:
        raise ValueError(f"unknown preset {name!r}; valid presets: "
                         f"{', '.join(available_presets())}") from None
    return factory()


def preset_rows() -> list:
    """Digest of every preset for the CLI ``presets`` table."""
    rows = []
    for name in available_presets():
        config = get_preset(name)
        rows.append({
            "name": name,
            "grid": "x".join(str(n) for n in config.khi.grid_shape),
            "particles_per_cell": config.khi.particles_per_cell,
            "n_input_points": config.ml.model.n_input_points,
            "latent_dim": config.ml.model.latent_dim,
            "n_rep": config.ml.n_rep,
            "seed": config.seed,
        })
    return rows
