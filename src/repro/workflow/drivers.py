"""Execution drivers: strategies for driving one workflow session.

The seed API had two divergent run paths — ``ArtificialScientist.run``
(strictly alternating, deterministic) and ``ThreadedWorkflowRunner``
(concurrent, different result type).  Drivers unify them behind one
interface: every driver takes a built
:class:`repro.workflow.builder.WorkflowSession` and returns the same
:class:`repro.workflow.report.RunResult`.

* :class:`SerialDriver` — one thread, one simulation step then drain; the
  deterministic steady-state schedule (the seed ``run()`` behaviour).
* :class:`ThreadedDriver` — the simulation in a producer thread, every
  consumer in its own thread; the bounded SST queues provide the only
  coupling (the seed ``ThreadedWorkflowRunner`` behaviour, generalised to
  many consumers).
* :class:`PipelinedDriver` — like threaded, but with explicit bounded
  back-pressure: the producer admits at most ``max_in_flight`` streamed
  iterations that the slowest consumer has not finished yet, overlapping
  simulation and training while keeping memory bounded independently of
  the per-queue limits.  It also records a queue-depth timeline.

Producer and consumer exceptions are always captured (never silently
dropped) and surfaced together on the ``RunResult``.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional, TYPE_CHECKING, Type

from repro.streaming.broker import StreamClosedError
from repro.workflow.report import RunResult

if TYPE_CHECKING:  # pragma: no cover
    from repro.workflow.builder import WorkflowSession


def _iteration_callback(session: "WorkflowSession", name: str,
                        extra: Optional[Callable[[int, int], None]] = None):
    """Compose the session's hook dispatch with a driver-internal callback."""
    def callback(iteration_index: int, n_samples: int) -> None:
        session.notify_iteration(name, iteration_index, n_samples)
        if extra is not None:
            extra(iteration_index, n_samples)
    return callback


def _collect_summaries(session: "WorkflowSession") -> Dict[str, Dict[str, object]]:
    return {name: consumer.summary()
            for name, consumer in session.consumers.items()}


def _true_producer_error(producer_error: Optional[BaseException],
                         consumer_errors: Dict[str, BaseException]
                         ) -> Optional[BaseException]:
    """Drop a secondary stream-closed error caused by the consumers dying.

    When the last consumer fails, its queue is closed and the producer's
    next put raises ``StreamClosedError("no live consumers left")`` — a
    symptom, not a producer failure.  Reporting it as one would mask the
    consumers' root-cause exceptions behind ``raise_if_failed()``.
    """
    if (isinstance(producer_error, StreamClosedError) and consumer_errors):
        return None
    return producer_error


class ExecutionDriver:
    """Strategy interface: drive a session for ``n_steps`` steps."""

    name: str = "abstract"

    def execute(self, session: "WorkflowSession", n_steps: int) -> RunResult:
        raise NotImplementedError


class SerialDriver(ExecutionDriver):
    """Alternate one simulation step with draining every consumer's queue."""

    name = "serial"

    def execute(self, session: "WorkflowSession", n_steps: int) -> RunResult:
        start = time.perf_counter()
        simulation_time = 0.0
        consumer_times = {name: 0.0 for name in session.consumers}
        producer_error: Optional[BaseException] = None
        consumer_errors: Dict[str, BaseException] = {}
        max_depth = 0
        depth_samples: List[int] = []

        steps_done = 0
        for index in range(n_steps):
            t0 = time.perf_counter()
            try:
                session.simulation.step()
                session.fire_step(index)
                steps_done += 1
            except BaseException as error:  # noqa: BLE001 - surfaced in the result
                producer_error = error
                break
            finally:
                simulation_time += time.perf_counter() - t0
            depth = session.queue_depth()
            depth_samples.append(depth)
            max_depth = max(max_depth, depth)
            for name, consumer in session.consumers.items():
                if name in consumer_errors:
                    continue
                queued = session.brokers[name].queued_steps
                if not queued:
                    continue
                t0 = time.perf_counter()
                try:
                    consumer.consume(max_iterations=queued,
                                     on_iteration=_iteration_callback(session, name))
                except BaseException as error:  # noqa: BLE001
                    consumer_errors[name] = error
                    session.brokers[name].close()
                finally:
                    consumer_times[name] += time.perf_counter() - t0

        # flush: end the stream and let every consumer drain what is left
        try:
            session.writer_series.close()
        except BaseException as error:  # noqa: BLE001
            producer_error = producer_error or error
        for name, consumer in session.consumers.items():
            if name in consumer_errors:
                continue
            t0 = time.perf_counter()
            try:
                consumer.consume(on_iteration=_iteration_callback(session, name))
            except BaseException as error:  # noqa: BLE001
                consumer_errors[name] = error
                session.brokers[name].close()
            finally:
                consumer_times[name] += time.perf_counter() - t0

        wall = time.perf_counter() - start
        # report the steps actually completed, not the ones requested — the
        # two differ when the producer failed mid-run
        report = session.build_report(
            n_steps=steps_done, wall_time=wall, simulation_time=simulation_time,
            training_time=consumer_times.get(session.primary_name, 0.0))
        return RunResult(report=report, driver=self.name, max_queue_depth=max_depth,
                         queue_depth_samples=depth_samples,
                         producer_exception=_true_producer_error(producer_error,
                                                                 consumer_errors),
                         consumer_exceptions=consumer_errors,
                         consumer_summaries=_collect_summaries(session))


class _ConcurrentDriverBase(ExecutionDriver):
    """Shared producer/consumer thread scaffolding of the concurrent drivers."""

    def __init__(self, join_timeout: float = 300.0) -> None:
        self.join_timeout = float(join_timeout)

    # subclasses override these two to inject back-pressure / accounting
    def _before_step(self, context: dict, index: int) -> None:
        pass

    def _consumer_extra(self, context: dict, name: str):
        return None

    def execute(self, session: "WorkflowSession", n_steps: int) -> RunResult:
        lock = threading.Lock()
        context: dict = {
            "session": session, "lock": lock, "abort": threading.Event(),
            "producer_error": None, "consumer_errors": {},
            "max_depth": 0, "depth_samples": [], "simulation_time": 0.0,
            "steps_done": 0,
            "consumer_times": {name: 0.0 for name in session.consumers},
        }
        self._prepare(context, session)
        start = time.perf_counter()

        def produce() -> None:
            try:
                for index in range(n_steps):
                    self._before_step(context, index)
                    if context["abort"].is_set():
                        break
                    t0 = time.perf_counter()
                    session.simulation.step()
                    elapsed = time.perf_counter() - t0
                    session.fire_step(index)
                    depth = session.queue_depth()
                    # all run accounting updates under one lock so the final
                    # snapshot is coherent even if this thread leaks past the
                    # join timeout
                    with lock:
                        context["simulation_time"] += elapsed
                        context["steps_done"] += 1
                        context["depth_samples"].append(depth)
                        context["max_depth"] = max(context["max_depth"], depth)
            except BaseException as error:  # noqa: BLE001 - surfaced in the result
                with lock:
                    context["producer_error"] = error
            finally:
                # always end the stream so no consumer waits forever
                try:
                    session.writer_series.close()
                except BaseException as error:  # noqa: BLE001
                    with lock:
                        if context["producer_error"] is None:
                            context["producer_error"] = error

        def consume(name: str, consumer) -> None:
            callback = _iteration_callback(session, name,
                                           extra=self._consumer_extra(context, name))
            t0 = time.perf_counter()
            try:
                consumer.consume(on_iteration=callback)
            except BaseException as error:  # noqa: BLE001
                with lock:
                    context["consumer_errors"][name] = error
                session.brokers[name].close()
                self._consumer_died(context, name)
            finally:
                with lock:
                    context["consumer_times"][name] = time.perf_counter() - t0

        threads = [threading.Thread(target=produce, name="workflow-producer",
                                    daemon=True)]
        threads += [threading.Thread(target=consume, args=(name, consumer),
                                     name=f"workflow-consumer-{name}", daemon=True)
                    for name, consumer in session.consumers.items()]
        for thread in threads:
            thread.start()
        deadline = time.monotonic() + self.join_timeout
        stuck = []
        for thread in threads:
            thread.join(timeout=max(0.0, deadline - time.monotonic()))
            if thread.is_alive():
                stuck.append(thread.name)
        if stuck:
            context["abort"].set()
            timeout_error = TimeoutError(
                f"threads did not finish within {self.join_timeout:.0f} s: "
                f"{', '.join(stuck)}")
            with lock:
                if context["producer_error"] is None:
                    context["producer_error"] = timeout_error

        wall = time.perf_counter() - start
        # snapshot the shared state: a thread leaked past the join timeout
        # must not mutate the result the caller is already inspecting
        with lock:
            steps_done = context["steps_done"]
            simulation_time = context["simulation_time"]
            training_time = context["consumer_times"].get(session.primary_name, 0.0)
            consumer_errors = dict(context["consumer_errors"])
            producer_error = context["producer_error"]
            depth_samples = list(context["depth_samples"])
            max_depth = context["max_depth"]
        report = session.build_report(
            n_steps=steps_done, wall_time=wall,
            simulation_time=simulation_time, training_time=training_time)
        return RunResult(report=report, driver=self.name,
                         max_queue_depth=max_depth,
                         queue_depth_samples=depth_samples,
                         producer_exception=_true_producer_error(producer_error,
                                                                 consumer_errors),
                         consumer_exceptions=consumer_errors,
                         consumer_summaries=_collect_summaries(session))

    def _prepare(self, context: dict, session: "WorkflowSession") -> None:
        pass

    def _consumer_died(self, context: dict, name: str) -> None:
        pass


class ThreadedDriver(_ConcurrentDriverBase):
    """Producer and every consumer in their own threads, coupled only by the
    bounded SST queues (the paper's co-scheduled steady state)."""

    name = "threaded"


class PipelinedDriver(_ConcurrentDriverBase):
    """Overlap simulation and training with explicit bounded back-pressure.

    On top of the per-queue limits, the producer only starts a simulation
    step while fewer than ``max_in_flight`` streamed iterations are still
    unconsumed by the *slowest* consumer.  This bounds end-to-end staleness
    (how far training lags the simulation) rather than just queue memory.
    """

    name = "pipelined"

    def __init__(self, max_in_flight: Optional[int] = None,
                 join_timeout: float = 300.0, wait_timeout: float = 60.0) -> None:
        super().__init__(join_timeout=join_timeout)
        if max_in_flight is not None and max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        self.max_in_flight = max_in_flight
        self.wait_timeout = float(wait_timeout)

    def _prepare(self, context: dict, session: "WorkflowSession") -> None:
        limit = self.max_in_flight
        if limit is None:
            limit = max(2, min(b.queue_limit for b in session.brokers.values()))
        context["max_in_flight"] = limit
        context["condition"] = threading.Condition()
        context["consumed_counts"] = {name: 0 for name in session.consumers}
        context["dead_consumers"] = set()

    def _in_flight(self, context: dict) -> int:
        counts = [count for name, count in context["consumed_counts"].items()
                  if name not in context["dead_consumers"]]
        if not counts:
            return 0  # nobody left to wait for
        session = context["session"]
        return session.producer.iterations_streamed - min(counts)

    def _before_step(self, context: dict, index: int) -> None:
        condition: threading.Condition = context["condition"]
        with condition:
            done = condition.wait_for(
                lambda: self._in_flight(context) < context["max_in_flight"]
                or context["abort"].is_set(),
                timeout=self.wait_timeout)
            if not done:
                raise TimeoutError(
                    "pipelined back-pressure stalled: no consumer drained the "
                    f"stream for {self.wait_timeout:.0f} s")

    def _consumer_extra(self, context: dict, name: str):
        condition: threading.Condition = context["condition"]

        def on_iteration(iteration_index: int, n_samples: int) -> None:
            with condition:
                context["consumed_counts"][name] += 1
                condition.notify_all()
        return on_iteration

    def _consumer_died(self, context: dict, name: str) -> None:
        condition: threading.Condition = context["condition"]
        with condition:
            context["dead_consumers"].add(name)
            if len(context["dead_consumers"]) == len(context["consumed_counts"]):
                context["abort"].set()
            condition.notify_all()


# --------------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------------- #
_DRIVERS: Dict[str, Type[ExecutionDriver]] = {
    SerialDriver.name: SerialDriver,
    ThreadedDriver.name: ThreadedDriver,
    PipelinedDriver.name: PipelinedDriver,
}


def available_drivers() -> tuple:
    return tuple(sorted(_DRIVERS))


def register_driver(name: str, driver_cls: Type[ExecutionDriver],
                    overwrite: bool = False) -> None:
    if name in _DRIVERS and not overwrite:
        raise ValueError(f"driver {name!r} is already registered")
    _DRIVERS[name] = driver_cls


def get_driver(name: str, **kwargs) -> ExecutionDriver:
    """Instantiate a driver by name (``serial``, ``threaded``, ``pipelined``)."""
    try:
        driver_cls = _DRIVERS[name]
    except KeyError:
        raise ValueError(f"unknown driver {name!r}; valid drivers: "
                         f"{', '.join(available_drivers())}") from None
    return driver_cls(**kwargs)
