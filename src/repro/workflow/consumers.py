"""Stream consumers: pluggable reader applications of one workflow stream.

In the paper any number of independent consumer applications can attach to
the openPMD-over-SST stream — the MLapp is simply the one that trains.
This module gives consumers a uniform shape (:class:`StreamConsumer`) so
that :class:`repro.workflow.builder.WorkflowSession` can fan one producer
stream out to several of them, and a small registry so that the CLI and
configs can name them.

Two consumers ship by default:

* :class:`MLAppConsumer` — wraps :class:`repro.core.mlapp.MLApp`, the
  in-transit trainer (the primary consumer of every session),
* :class:`HistogramMonitorConsumer` — a lightweight monitoring application
  that histograms streamed momenta and tracks spectra without training,
  the kind of live diagnostic the loose coupling is meant to enable.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, Optional, TYPE_CHECKING

import numpy as np

from repro.core.mlapp import MLApp
from repro.openpmd.series import Series
from repro.utils.rng import RandomState

if TYPE_CHECKING:  # pragma: no cover
    from repro.workflow.builder import WorkflowSession

#: Called after a consumer finishes one iteration: ``(iteration_index, n_samples)``.
IterationCallback = Callable[[int, int], None]

#: Builds a consumer: ``factory(name, series, session, rng) -> StreamConsumer``.
ConsumerFactory = Callable[[str, Series, "WorkflowSession", RandomState], "StreamConsumer"]


class StreamConsumer(abc.ABC):
    """One reader application attached to the workflow stream."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.iterations_consumed = 0
        self.samples_consumed = 0

    def configure_run(self, keep_for_evaluation: int) -> None:
        """Per-run knobs pushed down by the session before driving starts."""

    @abc.abstractmethod
    def consume(self, max_iterations: Optional[int] = None,
                on_iteration: Optional[IterationCallback] = None) -> int:
        """Read up to ``max_iterations`` from the stream (all, if ``None``)."""

    @abc.abstractmethod
    def summary(self) -> Dict[str, object]:
        """A JSON-able digest of what this consumer did."""


class MLAppConsumer(StreamConsumer):
    """The paper's MLapp as a session consumer: trains the VAE+INN in transit."""

    def __init__(self, name: str, series: Series, session: "WorkflowSession",
                 rng: RandomState = None) -> None:
        super().__init__(name)
        self.mlapp = MLApp(series, session.config.ml, rng=rng)
        self.keep_for_evaluation = 0

    def configure_run(self, keep_for_evaluation: int) -> None:
        self.keep_for_evaluation = int(keep_for_evaluation)

    def consume(self, max_iterations: Optional[int] = None,
                on_iteration: Optional[IterationCallback] = None) -> int:
        consumed = self.mlapp.consume(max_iterations=max_iterations,
                                      keep_for_evaluation=self.keep_for_evaluation,
                                      on_iteration=on_iteration)
        self.iterations_consumed = self.mlapp.iterations_consumed
        self.samples_consumed = self.mlapp.samples_consumed
        return consumed

    def summary(self) -> Dict[str, object]:
        return {
            "kind": "mlapp",
            "iterations_consumed": self.iterations_consumed,
            "samples_consumed": self.samples_consumed,
            "training_iterations": len(self.mlapp.history),
            "final_losses": self.mlapp.loss_summary(),
        }


class HistogramMonitorConsumer(StreamConsumer):
    """A monitoring consumer: histograms momenta, averages spectra, trains nothing.

    It only touches the ``ml_samples`` records, demonstrating that a second
    application can attach to the same stream without knowing anything about
    the trainer (or even about the raw particle records).
    """

    def __init__(self, name: str, series: Series, n_bins: int = 16,
                 momentum_range: float = 0.5) -> None:
        super().__init__(name)
        self.series = series
        self.n_bins = int(n_bins)
        self.bin_edges = np.linspace(-momentum_range, momentum_range, self.n_bins + 1)
        self.momentum_counts = np.zeros(self.n_bins, dtype=np.int64)
        self.spectrum_sum: Optional[np.ndarray] = None
        self.per_step_sample_counts: Dict[int, int] = {}

    def consume(self, max_iterations: Optional[int] = None,
                on_iteration: Optional[IterationCallback] = None) -> int:
        consumed = 0
        for iteration in self.series.read_iterations():
            records = iteration.get_particles("ml_samples")
            clouds = records["point_clouds"].load_scalar()
            spectra = records["spectra"].load_scalar()
            # flow-direction momentum component of every point of every cloud
            momenta = np.asarray(clouds)[..., 3].ravel()
            counts, _ = np.histogram(momenta, bins=self.bin_edges)
            self.momentum_counts += counts
            total = np.asarray(spectra).sum(axis=0)
            self.spectrum_sum = total if self.spectrum_sum is None \
                else self.spectrum_sum + total
            n_samples = len(clouds)
            self.per_step_sample_counts[iteration.index] = n_samples
            self.iterations_consumed += 1
            self.samples_consumed += n_samples
            consumed += 1
            if on_iteration is not None:
                on_iteration(iteration.index, n_samples)
            if max_iterations is not None and consumed >= max_iterations:
                break
        return consumed

    @property
    def mean_spectrum(self) -> Optional[np.ndarray]:
        if self.spectrum_sum is None or self.samples_consumed == 0:
            return None
        return self.spectrum_sum / self.samples_consumed

    def summary(self) -> Dict[str, object]:
        mean = self.mean_spectrum
        return {
            "kind": "histogram-monitor",
            "iterations_consumed": self.iterations_consumed,
            "samples_consumed": self.samples_consumed,
            "momentum_histogram": self.momentum_counts.tolist(),
            "mean_spectrum_peak": None if mean is None else float(mean.max()),
        }


# --------------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------------- #
def _make_mlapp(name: str, series: Series, session: "WorkflowSession",
                rng: RandomState) -> StreamConsumer:
    return MLAppConsumer(name, series, session, rng=rng)


def _make_histogram_monitor(name: str, series: Series, session: "WorkflowSession",
                            rng: RandomState) -> StreamConsumer:
    return HistogramMonitorConsumer(name, series)


_CONSUMER_FACTORIES: Dict[str, ConsumerFactory] = {
    "mlapp": _make_mlapp,
    "histogram-monitor": _make_histogram_monitor,
}


def available_consumers() -> tuple:
    return tuple(sorted(_CONSUMER_FACTORIES))


def register_consumer(kind: str, factory: ConsumerFactory,
                      overwrite: bool = False) -> None:
    """Register a named consumer factory for builders/CLI to reference."""
    if kind in _CONSUMER_FACTORIES and not overwrite:
        raise ValueError(f"consumer kind {kind!r} is already registered")
    _CONSUMER_FACTORIES[kind] = factory


def get_consumer_factory(kind: str) -> ConsumerFactory:
    try:
        return _CONSUMER_FACTORIES[kind]
    except KeyError:
        raise ValueError(
            f"unknown consumer kind {kind!r}; valid kinds: "
            f"{', '.join(available_consumers())}") from None
