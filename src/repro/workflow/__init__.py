"""repro.workflow — the composable session/driver API of the coupled run.

This subsystem replaces the monolithic ``ArtificialScientist`` wiring with
pluggable, named components assembled around one openPMD-over-SST stream:

* :class:`WorkflowBuilder` / :class:`WorkflowSession` — assemble producers,
  consumers, data planes and lifecycle hooks from a ``WorkflowConfig``,
  with fan-out from one stream to many consumers,
* :mod:`repro.workflow.drivers` — execution strategies (serial, threaded,
  pipelined) all returning one uniform :class:`RunResult`,
* :mod:`repro.workflow.presets` — named configurations (``laptop``,
  ``paper``, ``cli-small``, ``bench-tiny``),
* :mod:`repro.workflow.consumers` — the consumer registry (MLapp trainer,
  histogram monitor, user-registered kinds).

``repro.core.ArtificialScientist`` remains as a thin deprecated facade over
a serial single-consumer session.
"""

# NOTE: repro.workflow.report must be imported first — repro.core's modules
# import it at module level, and repro.core is (re-)entered while the later
# submodules here import the core building blocks.
from repro.workflow.report import RunResult, WorkflowReport
from repro.workflow.fanout import FanOutBroker
from repro.workflow.consumers import (HistogramMonitorConsumer, MLAppConsumer,
                                      StreamConsumer, available_consumers,
                                      get_consumer_factory, register_consumer)
from repro.workflow.drivers import (ExecutionDriver, PipelinedDriver, SerialDriver,
                                    ThreadedDriver, available_drivers, get_driver,
                                    register_driver)
from repro.workflow.presets import (available_presets, get_preset, preset_rows,
                                    register_preset)
from repro.workflow.builder import (ConsumerSpec, WorkflowBuilder, WorkflowHooks,
                                    WorkflowSession)

__all__ = [
    "RunResult",
    "WorkflowReport",
    "FanOutBroker",
    "StreamConsumer",
    "MLAppConsumer",
    "HistogramMonitorConsumer",
    "available_consumers",
    "register_consumer",
    "get_consumer_factory",
    "ExecutionDriver",
    "SerialDriver",
    "ThreadedDriver",
    "PipelinedDriver",
    "available_drivers",
    "get_driver",
    "register_driver",
    "available_presets",
    "get_preset",
    "register_preset",
    "preset_rows",
    "ConsumerSpec",
    "WorkflowBuilder",
    "WorkflowHooks",
    "WorkflowSession",
]
