"""WorkflowBuilder / WorkflowSession: composable assembly of the coupled run.

The paper's workflow is loosely coupled by construction: producer and
consumers only ever meet through the openPMD-over-SST stream.  The session
object reflects that — it assembles named components around one stream:

* one **producer**: the KHI PIC simulation with the streaming output plugin,
* one **stream**: a :class:`repro.workflow.fanout.FanOutBroker` teeing every
  step into a bounded per-consumer queue,
* *N* **consumers** (the MLapp by default; more via the consumer registry),
* one **execution driver** (serial / threaded / pipelined) that owns the
  run schedule and returns a uniform :class:`repro.workflow.report.RunResult`.

Typical use::

    from repro.workflow import WorkflowBuilder

    session = (WorkflowBuilder()
               .preset("laptop")
               .driver("threaded")
               .add_consumer("monitor", kind="histogram-monitor")
               .on_step(lambda s, i: print("step", i))
               .build())
    result = session.run(5)
    print(result.report.summary())

A session is single-use (streams cannot rewind): calling :meth:`run` twice
raises ``RuntimeError("session already consumed")``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, TYPE_CHECKING, Union

from repro.core.config import WorkflowConfig
from repro.core.placement import PlacementMode, ResourcePlan
from repro.core.producer import StreamingProducerPlugin
from repro.core.transforms import RegionPartition
from repro.openpmd.backends import StreamingBackend
from repro.openpmd.series import Access, Series
from repro.pic.khi import make_khi_simulation
from repro.pic.simulation import PICSimulation
from repro.radiation.detector import RadiationDetector
from repro.streaming.broker import QueueFullPolicy, SSTBroker
from repro.streaming.dataplane import make_data_plane
from repro.streaming.engine import SSTReaderEngine, SSTWriterEngine
from repro.telemetry import add_phase_spans
from repro.utils.rng import derive_seed, seeded_rng
from repro.workflow.consumers import (ConsumerFactory, MLAppConsumer, StreamConsumer,
                                      get_consumer_factory)
from repro.workflow.drivers import ExecutionDriver, SerialDriver, get_driver
from repro.workflow.fanout import FanOutBroker
from repro.workflow.presets import get_preset
from repro.workflow.report import RunResult, WorkflowReport

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.evaluation import InversionReport

#: ``hook(session, step_index)`` after every simulation step.
StepHook = Callable[["WorkflowSession", int], None]
#: ``hook(session, consumer_name, iteration_index, n_samples)`` after a
#: consumer finishes one streamed iteration.
IterationHook = Callable[["WorkflowSession", str, int, int], None]
#: ``hook(session, result)`` once the driver returns.
RunEndHook = Callable[["WorkflowSession", RunResult], None]


@dataclass
class WorkflowHooks:
    """Lifecycle callbacks observed by every driver."""

    on_step: List[StepHook] = field(default_factory=list)
    on_iteration_consumed: List[IterationHook] = field(default_factory=list)
    on_run_end: List[RunEndHook] = field(default_factory=list)


@dataclass
class ConsumerSpec:
    """A named consumer to attach to the session's stream."""

    name: str
    factory: ConsumerFactory
    queue_limit: Optional[int] = None   #: defaults to the streaming config's


class WorkflowSession:
    """One assembled, single-use coupled run.

    Prefer :class:`WorkflowBuilder` over calling this constructor directly.
    """

    PRIMARY_CONSUMER = "mlapp"

    def __init__(self, config: Optional[WorkflowConfig] = None,
                 placement: Optional[ResourcePlan] = None,
                 driver: Optional[ExecutionDriver] = None,
                 consumer_specs: Optional[List[ConsumerSpec]] = None,
                 hooks: Optional[WorkflowHooks] = None) -> None:
        self.config = config or WorkflowConfig()
        self.placement = placement or ResourcePlan(n_nodes=1,
                                                   mode=PlacementMode.INTRA_NODE)
        self.driver = driver or SerialDriver()
        self.hooks = hooks or WorkflowHooks()
        cfg = self.config

        # --- producer: PIC simulation + streaming output plugin ------------ #
        self.simulation: PICSimulation = make_khi_simulation(
            cfg.khi, rng=seeded_rng(derive_seed(cfg.seed, 1)))
        self.detector = RadiationDetector.for_khi(
            density=cfg.khi.density,
            n_directions=cfg.n_detector_directions,
            n_frequencies=cfg.n_detector_frequencies)
        self.partition = RegionPartition(cfg.khi.grid_config, cfg.region_counts)
        data_plane = make_data_plane(cfg.streaming.data_plane,
                                     rng=seeded_rng(derive_seed(cfg.seed, 2)))

        # --- consumers: one bounded queue + reader series each -------------- #
        if consumer_specs is None:
            consumer_specs = [ConsumerSpec(self.PRIMARY_CONSUMER,
                                           get_consumer_factory("mlapp"))]
        if not consumer_specs:
            raise ValueError("a workflow session needs at least one consumer")
        names = [spec.name for spec in consumer_specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate consumer names: {names}")
        self.brokers: Dict[str, SSTBroker] = {}
        self.consumer_series: Dict[str, Series] = {}
        self.consumers: Dict[str, StreamConsumer] = {}
        for position, spec in enumerate(consumer_specs):
            broker = SSTBroker(f"{cfg.streaming.stream_name}#{spec.name}",
                               queue_limit=cfg.streaming.queue_limit
                               if spec.queue_limit is None else spec.queue_limit,
                               policy=QueueFullPolicy.BLOCK)
            reader = SSTReaderEngine(broker, data_plane=data_plane)
            series = Series(cfg.streaming.stream_name, Access.READ_LINEAR,
                            StreamingBackend(reader=reader))
            # the primary consumer keeps the seed's RNG derivation so the
            # ArtificialScientist facade reproduces seed results bit-for-bit
            stream_index = 4 if spec.name == self.PRIMARY_CONSUMER else 10 + position
            rng = seeded_rng(derive_seed(cfg.seed, stream_index))
            self.brokers[spec.name] = broker
            self.consumer_series[spec.name] = series
            self.consumers[spec.name] = spec.factory(spec.name, series, self, rng)
        self.primary_name = names[0]

        # --- the stream: one writer teeing into every consumer queue -------- #
        self.fanout = FanOutBroker(cfg.streaming.stream_name,
                                   list(self.brokers.values()))
        writer_engine = SSTWriterEngine(self.fanout, data_plane=data_plane)
        self.writer_series = Series(cfg.streaming.stream_name, Access.CREATE,
                                    StreamingBackend(writer=writer_engine))
        reduction = cfg.streaming.build_reduction_pipeline(
            rng=seeded_rng(derive_seed(cfg.seed, 6)))
        self.producer = StreamingProducerPlugin(
            self.writer_series, self.detector, self.partition,
            n_points=cfg.n_points_per_sample,
            sample_interval=cfg.streaming.sample_interval,
            reduction=reduction,
            rng=seeded_rng(derive_seed(cfg.seed, 3)))
        self.simulation.add_plugin(self.producer)
        self._consumed = False

    # -- running ------------------------------------------------------------ #
    @property
    def consumed(self) -> bool:
        return self._consumed

    def run(self, n_steps: int, keep_for_evaluation: int = 1) -> RunResult:
        """Drive the session for ``n_steps`` with the configured driver."""
        if n_steps < 1:
            raise ValueError("n_steps must be >= 1")
        if self._consumed:
            raise RuntimeError(
                "session already consumed: a stream cannot be rewound, build "
                "a new WorkflowSession to run again")
        self._consumed = True
        for consumer in self.consumers.values():
            consumer.configure_run(keep_for_evaluation)
        result = self.driver.execute(self, n_steps)
        report = getattr(result, "report", None)
        if report is not None:
            # phase sub-spans of the surrounding execute span (no-op when
            # nothing is tracing): where this run's wall time actually went
            add_phase_spans({"pic": getattr(report, "simulation_time", None),
                             "train": getattr(report, "training_time", None)})
        for hook in self.hooks.on_run_end:
            hook(self, result)
        return result

    # -- driver-facing helpers ----------------------------------------------- #
    def fire_step(self, step_index: int) -> None:
        for hook in self.hooks.on_step:
            hook(self, step_index)

    def notify_iteration(self, consumer_name: str, iteration_index: int,
                         n_samples: int) -> None:
        for hook in self.hooks.on_iteration_consumed:
            hook(self, consumer_name, iteration_index, n_samples)

    def queue_depth(self) -> int:
        """Depth of the fullest consumer queue right now."""
        return self.fanout.queued_steps

    def build_report(self, n_steps: int, wall_time: float,
                     simulation_time: float, training_time: float) -> WorkflowReport:
        mlapp = self.mlapp
        return WorkflowReport(
            n_steps=n_steps,
            iterations_streamed=self.producer.iterations_streamed,
            samples_streamed=self.producer.samples_streamed,
            training_iterations=len(mlapp.history) if mlapp is not None else 0,
            bytes_streamed=self.producer.bytes_streamed,
            wall_time=wall_time,
            simulation_time=simulation_time,
            training_time=training_time,
            final_losses=mlapp.loss_summary() if mlapp is not None else {},
            loss_history_total=list(mlapp.history.series("total"))
            if mlapp is not None and len(mlapp.history) else [],
        )

    # -- convenience accessors ------------------------------------------------ #
    @property
    def primary(self) -> StreamConsumer:
        return self.consumers[self.primary_name]

    @property
    def mlapp(self):
        """The first training consumer's MLapp (``None`` if there is none)."""
        for consumer in self.consumers.values():
            if isinstance(consumer, MLAppConsumer):
                return consumer.mlapp
        return None

    @property
    def model(self):
        mlapp = self.mlapp
        return mlapp.model if mlapp is not None else None

    @property
    def broker(self) -> SSTBroker:
        """The primary consumer's bounded queue (seed-compatible accessor)."""
        return self.brokers[self.primary_name]

    @property
    def reader_series(self) -> Series:
        return self.consumer_series[self.primary_name]

    def evaluate(self, n_posterior_samples: int = 4) -> "InversionReport":
        """Evaluate the trained model on the held-out streamed samples (Fig. 9)."""
        from repro.analysis.evaluation import evaluate_inversion

        mlapp = self.mlapp
        if mlapp is None:
            raise RuntimeError("this session has no training consumer to evaluate")
        if not mlapp.evaluation_samples:
            raise RuntimeError("no evaluation samples were kept; run() with "
                               "keep_for_evaluation >= 1 first")
        return evaluate_inversion(mlapp.model, mlapp.evaluation_samples,
                                  n_posterior_samples=n_posterior_samples,
                                  rng=seeded_rng(derive_seed(self.config.seed, 5)))


class WorkflowBuilder:
    """Fluent assembly of a :class:`WorkflowSession`.

    Every method returns the builder; :meth:`build` produces a fresh,
    single-use session (the builder itself can be reused).
    """

    def __init__(self) -> None:
        self._config: Optional[WorkflowConfig] = None
        self._placement: Optional[ResourcePlan] = None
        self._driver: Optional[ExecutionDriver] = None
        self._consumer_specs: List[ConsumerSpec] = [
            ConsumerSpec(WorkflowSession.PRIMARY_CONSUMER,
                         get_consumer_factory("mlapp"))]
        self._hooks = WorkflowHooks()

    # -- configuration -------------------------------------------------------- #
    def config(self, config: WorkflowConfig) -> "WorkflowBuilder":
        self._config = config
        return self

    def preset(self, name: str) -> "WorkflowBuilder":
        """Use a named preset from :mod:`repro.workflow.presets`."""
        self._config = get_preset(name)
        return self

    def config_file(self, path: str) -> "WorkflowBuilder":
        """Load the configuration from a JSON file (``WorkflowConfig.from_file``)."""
        self._config = WorkflowConfig.from_file(path)
        return self

    def placement(self, plan: ResourcePlan) -> "WorkflowBuilder":
        self._placement = plan
        return self

    # -- execution strategy ---------------------------------------------------- #
    def driver(self, driver: Union[str, ExecutionDriver],
               **driver_kwargs) -> "WorkflowBuilder":
        """Select the execution driver by name or instance."""
        if isinstance(driver, ExecutionDriver):
            if driver_kwargs:
                raise ValueError("driver kwargs only apply when passing a name")
            self._driver = driver
        else:
            self._driver = get_driver(driver, **driver_kwargs)
        return self

    # -- consumers -------------------------------------------------------------- #
    def add_consumer(self, name: str, kind: Optional[str] = None,
                     factory: Optional[ConsumerFactory] = None,
                     queue_limit: Optional[int] = None) -> "WorkflowBuilder":
        """Attach an additional named consumer to the stream.

        Provide either a registered ``kind`` (see
        :func:`repro.workflow.consumers.available_consumers`) or a custom
        ``factory``; by default ``kind=name`` is assumed.
        """
        if factory is None:
            factory = get_consumer_factory(kind or name)
        elif kind is not None:
            raise ValueError("pass either kind or factory, not both")
        self._consumer_specs.append(ConsumerSpec(name, factory,
                                                 queue_limit=queue_limit))
        return self

    def replace_consumers(self, specs: List[ConsumerSpec]) -> "WorkflowBuilder":
        """Swap out the full consumer list (including the default MLapp)."""
        self._consumer_specs = list(specs)
        return self

    # -- lifecycle hooks ---------------------------------------------------------- #
    def on_step(self, hook: StepHook) -> "WorkflowBuilder":
        self._hooks.on_step.append(hook)
        return self

    def on_iteration_consumed(self, hook: IterationHook) -> "WorkflowBuilder":
        self._hooks.on_iteration_consumed.append(hook)
        return self

    def on_run_end(self, hook: RunEndHook) -> "WorkflowBuilder":
        self._hooks.on_run_end.append(hook)
        return self

    # -- assembly --------------------------------------------------------------- #
    def build(self) -> WorkflowSession:
        hooks = WorkflowHooks(on_step=list(self._hooks.on_step),
                              on_iteration_consumed=list(
                                  self._hooks.on_iteration_consumed),
                              on_run_end=list(self._hooks.on_run_end))
        return WorkflowSession(config=self._config, placement=self._placement,
                               driver=self._driver,
                               consumer_specs=list(self._consumer_specs),
                               hooks=hooks)
