"""A relativistic 3D3V particle-in-cell (PIC) simulator in NumPy.

This subpackage plays the role of PIConGPU in the reproduced workflow: it
provides the numerical scheme PIConGPU implements (Yee-grid FDTD field
solver, relativistic Boris particle pusher, cloud-in-cell interpolation and
charge-conserving Esirkepov current deposition), the Kelvin-Helmholtz
instability setup of Section IV-A, supercell particle sorting, a slab domain
decomposition used by the scaling studies, and the figure-of-merit
accounting of Fig. 4.

Scales are laptop sized (10^4–10^6 macro-particles instead of 2.7·10^13) but
the algorithms are the same, so the data fed to the ML pipeline exercises
the same code paths as the full-scale runs in the paper.
"""

from repro.pic.grid import GridConfig, YeeGrid
from repro.pic.particles import ParticleSpecies
from repro.pic.pusher import boris_push, advance_positions
from repro.pic.deposition import (deposit_charge_cic, deposit_current_cic,
                                  deposit_current_esirkepov)
from repro.pic.interpolation import gather_fields
from repro.pic.maxwell import YeeSolver
from repro.pic.simulation import PICSimulation, SimulationConfig, Plugin
from repro.pic.khi import KHIConfig, make_khi_simulation
from repro.pic.fom import FigureOfMerit, figure_of_merit
from repro.pic.supercells import SupercellIndex
from repro.pic.domain import SlabDecomposition
from repro.pic.benchcase import (ScalingBenchmarkConfig, make_benchmark_simulation,
                                 measured_weak_scaling)

__all__ = [
    "ScalingBenchmarkConfig",
    "make_benchmark_simulation",
    "measured_weak_scaling",
    "GridConfig",
    "YeeGrid",
    "ParticleSpecies",
    "boris_push",
    "advance_positions",
    "deposit_charge_cic",
    "deposit_current_cic",
    "deposit_current_esirkepov",
    "gather_fields",
    "YeeSolver",
    "PICSimulation",
    "SimulationConfig",
    "Plugin",
    "KHIConfig",
    "make_khi_simulation",
    "FigureOfMerit",
    "figure_of_merit",
    "SupercellIndex",
    "SlabDecomposition",
]
