"""A relativistic 3D3V particle-in-cell (PIC) simulator in NumPy.

This subpackage plays the role of PIConGPU in the reproduced workflow: it
provides the numerical scheme PIConGPU implements (Yee-grid FDTD field
solver, relativistic Boris particle pusher, cloud-in-cell interpolation and
charge-conserving Esirkepov current deposition), the Kelvin-Helmholtz
instability setup of Section IV-A, supercell particle sorting, a slab domain
decomposition used by the scaling studies, and the figure-of-merit
accounting of Fig. 4.

Scales are laptop sized (10^4–10^6 macro-particles instead of 2.7·10^13) but
the algorithms are the same, so the data fed to the ML pipeline exercises
the same code paths as the full-scale runs in the paper.
"""

from repro.pic.grid import GridConfig, YeeGrid
from repro.pic.particles import ParticleSpecies
from repro.pic.pusher import boris_push, advance_positions
from repro.pic.deposition import (deposit_charge_cic, deposit_current_cic,
                                  deposit_current_esirkepov)
from repro.pic.interpolation import gather_fields
from repro.pic.kernels import (CICPlan, CICPlanSet, boris_push_fused,
                               deposit_charge_cic_fused,
                               deposit_current_cic_fused,
                               deposit_current_esirkepov_fused,
                               gather_fields_fused)
from repro.pic.maxwell import YeeSolver
from repro.pic.simulation import PICSimulation, SimulationConfig, Plugin
from repro.pic.khi import KHIConfig, make_khi_simulation
from repro.pic.fom import FigureOfMerit, figure_of_merit
from repro.pic.supercells import SupercellIndex
from repro.pic.domain import SlabDecomposition
from repro.pic.benchcase import (ScalingBenchmarkConfig, make_benchmark_simulation,
                                 measured_weak_scaling)

# lazy (PEP 562) so that ``python -m repro.pic.hotpath`` does not import the
# hotpath module a second time through the package init
_HOTPATH_EXPORTS = ("HotpathResult", "check_equivalence",
                    "run_hotpath_benchmark")


def __getattr__(name):
    if name in _HOTPATH_EXPORTS:
        from repro.pic import hotpath
        return getattr(hotpath, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ScalingBenchmarkConfig",
    "make_benchmark_simulation",
    "measured_weak_scaling",
    "GridConfig",
    "YeeGrid",
    "ParticleSpecies",
    "CICPlan",
    "CICPlanSet",
    "boris_push_fused",
    "deposit_charge_cic_fused",
    "deposit_current_cic_fused",
    "deposit_current_esirkepov_fused",
    "gather_fields_fused",
    "HotpathResult",
    "check_equivalence",
    "run_hotpath_benchmark",
    "boris_push",
    "advance_positions",
    "deposit_charge_cic",
    "deposit_current_cic",
    "deposit_current_esirkepov",
    "gather_fields",
    "YeeSolver",
    "PICSimulation",
    "SimulationConfig",
    "Plugin",
    "KHIConfig",
    "make_khi_simulation",
    "FigureOfMerit",
    "figure_of_merit",
    "SupercellIndex",
    "SlabDecomposition",
]
