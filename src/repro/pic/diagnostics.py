"""In-situ diagnostics: energy history, momentum histograms, density fields.

These provide the "ground truth" views used by the scientific evaluation
(Fig. 9): per-region momentum distributions weighted by charge, and the
growth of the magnetic field energy that identifies the linear phase of the
instability (Pausch et al. 2017).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.pic.deposition import deposit_charge_cic
from repro.pic.grid import YeeGrid
from repro.pic.particles import ParticleSpecies
from repro.pic.simulation import PICSimulation, Plugin


def momentum_histogram(species: ParticleSpecies, axis: int = 0,
                       bins: int = 64, momentum_range: Tuple[float, float] = (-0.5, 0.5),
                       mask: Optional[np.ndarray] = None
                       ) -> Tuple[np.ndarray, np.ndarray]:
    """Charge-weighted histogram of one momentum component.

    Returns ``(bin_centres, charge_density)`` where the charge density is the
    weighted count per bin (arbitrary units, matching the "charge density"
    axis of Fig. 9(b, c)).
    """
    momenta = species.momenta[:, axis]
    weights = species.weights
    if mask is not None:
        momenta = momenta[mask]
        weights = weights[mask]
    hist, edges = np.histogram(momenta, bins=bins, range=momentum_range, weights=weights)
    centres = 0.5 * (edges[:-1] + edges[1:])
    return centres, hist


def density_field(grid: YeeGrid, species: ParticleSpecies) -> np.ndarray:
    """Number density of a species on the grid [1/m^3]."""
    scratch = YeeGrid(grid.config)
    deposit_charge_cic(scratch, species.positions, 1.0, species.weights)
    return scratch.rho.copy()


def current_sheet_indicator(grid: YeeGrid) -> np.ndarray:
    """Magnitude of the in-plane magnetic field, which peaks at the KHI vortices."""
    return np.sqrt(grid.Bx ** 2 + grid.Bz ** 2 + grid.By ** 2)


@dataclass
class EnergyHistory(Plugin):
    """Plugin recording field and particle energies every ``interval`` steps."""

    interval: int = 1
    steps: List[int] = field(default_factory=list)
    electric: List[float] = field(default_factory=list)
    magnetic: List[float] = field(default_factory=list)
    kinetic: List[float] = field(default_factory=list)

    def on_start(self, simulation: PICSimulation) -> None:
        self._record(simulation)

    def on_step(self, simulation: PICSimulation) -> None:
        if simulation.step_index % self.interval == 0:
            self._record(simulation)

    def _record(self, simulation: PICSimulation) -> None:
        self.steps.append(simulation.step_index)
        self.electric.append(simulation.grid.electric_energy())
        self.magnetic.append(simulation.grid.magnetic_energy())
        self.kinetic.append(simulation.total_kinetic_energy())

    def total(self) -> np.ndarray:
        return (np.asarray(self.electric) + np.asarray(self.magnetic)
                + np.asarray(self.kinetic))

    def magnetic_growth_factor(self) -> float:
        """Ratio of the final to the initial magnetic field energy."""
        if len(self.magnetic) < 2:
            raise RuntimeError("not enough samples recorded")
        initial = self.magnetic[0] if self.magnetic[0] > 0 else self.magnetic[1]
        if initial == 0:
            return float("inf") if self.magnetic[-1] > 0 else 1.0
        return self.magnetic[-1] / initial

    def as_dict(self) -> Dict[str, np.ndarray]:
        return {
            "steps": np.asarray(self.steps),
            "electric": np.asarray(self.electric),
            "magnetic": np.asarray(self.magnetic),
            "kinetic": np.asarray(self.kinetic),
            "total": self.total(),
        }


@dataclass
class ChargeConservationMonitor(Plugin):
    """Plugin checking the continuity equation every step.

    Records ``max |d rho/dt + div J|`` normalised by the maximum charge
    density scale — with Esirkepov deposition this stays at round-off level.
    """

    residuals: List[float] = field(default_factory=list)
    _previous_rho: Optional[np.ndarray] = None

    def on_start(self, simulation: PICSimulation) -> None:
        self._previous_rho = self._charge_density(simulation)

    def on_step(self, simulation: PICSimulation) -> None:
        rho = self._charge_density(simulation)
        assert self._previous_rho is not None
        drho_dt = (rho - self._previous_rho) / simulation.config.dt
        residual = drho_dt + simulation.grid.divergence_j()
        scale = np.max(np.abs(drho_dt)) + 1e-300
        self.residuals.append(float(np.max(np.abs(residual)) / scale))
        self._previous_rho = rho

    @staticmethod
    def _charge_density(simulation: PICSimulation) -> np.ndarray:
        scratch = YeeGrid(simulation.config.grid)
        for s in simulation.species:
            deposit_charge_cic(scratch, s.positions, s.charge, s.weights)
        return scratch.rho.copy()

    def max_residual(self) -> float:
        return max(self.residuals) if self.residuals else 0.0
