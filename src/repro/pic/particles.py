"""Macro-particle species in structure-of-arrays layout.

Positions are stored in metres, momenta as the dimensionless
``u = p / (m c) = gamma * beta`` (the quantity plotted in Fig. 9 of the
paper), and every macro-particle carries a weight (number of real particles
it represents).  Structure-of-arrays layout keeps the pusher and deposition
fully vectorised.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro import constants
from repro.utils.validation import check_array


@dataclass
class ParticleSpecies:
    """A species of macro-particles.

    Parameters
    ----------
    name:
        Species label (e.g. ``"electrons"``).
    charge:
        Charge of one *real* particle [C] (e.g. ``-e`` for electrons).
    mass:
        Mass of one real particle [kg].
    positions:
        Array of shape ``(N, 3)``, metres.
    momenta:
        Array of shape ``(N, 3)``, dimensionless ``gamma * beta``.
    weights:
        Array of shape ``(N,)``; number of real particles per macro-particle.
    pushed:
        Whether this species is advanced by the pusher (immobile neutralising
        backgrounds set this to ``False``).
    """

    name: str
    charge: float
    mass: float
    positions: np.ndarray
    momenta: np.ndarray
    weights: np.ndarray
    pushed: bool = True

    def __post_init__(self) -> None:
        self.positions = check_array(self.positions, "positions", dtype=np.float64, ndim=2)
        self.momenta = check_array(self.momenta, "momenta", dtype=np.float64, ndim=2)
        self.weights = check_array(self.weights, "weights", dtype=np.float64, ndim=1)
        if self.positions.shape[1] != 3 or self.momenta.shape[1] != 3:
            raise ValueError("positions and momenta must have shape (N, 3)")
        if not (len(self.positions) == len(self.momenta) == len(self.weights)):
            raise ValueError("positions, momenta and weights must have the same length")
        if self.mass <= 0:
            raise ValueError("mass must be positive")

    # ------------------------------------------------------------------ #
    @property
    def n_macro(self) -> int:
        """Number of macro-particles."""
        return int(self.positions.shape[0])

    @property
    def charge_to_mass(self) -> float:
        """q/m of a real particle [C/kg]."""
        return self.charge / self.mass

    def gamma(self) -> np.ndarray:
        """Lorentz factor per macro-particle."""
        u2 = np.einsum("ij,ij->i", self.momenta, self.momenta)
        return np.sqrt(1.0 + u2)

    def velocities(self) -> np.ndarray:
        """Velocities ``v = u c / gamma`` [m/s], shape (N, 3)."""
        return self.momenta * (constants.SPEED_OF_LIGHT / self.gamma())[:, None]

    def beta(self) -> np.ndarray:
        """Normalised velocities ``v/c``."""
        return self.momenta / self.gamma()[:, None]

    def kinetic_energy(self) -> float:
        """Total kinetic energy ``sum w (gamma - 1) m c^2`` in joules."""
        mc2 = self.mass * constants.SPEED_OF_LIGHT ** 2
        return float(np.sum(self.weights * (self.gamma() - 1.0)) * mc2)

    def momentum_total(self) -> np.ndarray:
        """Total (weighted) momentum ``sum w m c u`` [kg m/s], shape (3,)."""
        mc = self.mass * constants.SPEED_OF_LIGHT
        return mc * np.einsum("i,ij->j", self.weights, self.momenta)

    def total_charge(self) -> float:
        """Total charge carried by the species [C]."""
        return float(self.charge * np.sum(self.weights))

    # ------------------------------------------------------------------ #
    def select(self, mask: np.ndarray) -> "ParticleSpecies":
        """Return a new species containing only the masked particles (copy)."""
        mask = np.asarray(mask)
        return ParticleSpecies(
            name=self.name, charge=self.charge, mass=self.mass,
            positions=self.positions[mask].copy(),
            momenta=self.momenta[mask].copy(),
            weights=self.weights[mask].copy(),
            pushed=self.pushed)

    def sample(self, n: int, rng: np.random.Generator,
               replace: Optional[bool] = None) -> "ParticleSpecies":
        """Randomly sample ``n`` macro-particles (with replacement if needed)."""
        if replace is None:
            replace = n > self.n_macro
        idx = rng.choice(self.n_macro, size=n, replace=replace)
        return self.select(idx)

    def phase_space(self) -> np.ndarray:
        """Return the 6D phase-space array ``(N, 6)`` = [x, y, z, ux, uy, uz].

        This is the per-particle record streamed to the MLapp (the 6
        channels of the encoder input in Fig. 7).
        """
        return np.concatenate([self.positions, self.momenta], axis=1)

    @staticmethod
    def empty(name: str, charge: float, mass: float) -> "ParticleSpecies":
        """Create a species with zero particles."""
        return ParticleSpecies(name=name, charge=charge, mass=mass,
                               positions=np.zeros((0, 3)),
                               momenta=np.zeros((0, 3)),
                               weights=np.zeros((0,)))

    @staticmethod
    def electrons(positions: np.ndarray, momenta: np.ndarray,
                  weights: np.ndarray) -> "ParticleSpecies":
        """Convenience constructor for an electron species."""
        return ParticleSpecies("electrons", -constants.ELEMENTARY_CHARGE,
                               constants.ELECTRON_MASS, positions, momenta, weights)

    @staticmethod
    def protons(positions: np.ndarray, momenta: np.ndarray,
                weights: np.ndarray, pushed: bool = False) -> "ParticleSpecies":
        """Convenience constructor for a (by default immobile) proton background."""
        return ParticleSpecies("protons", constants.ELEMENTARY_CHARGE,
                               constants.PROTON_MASS, positions, momenta, weights,
                               pushed=pushed)
