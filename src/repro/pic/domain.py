"""Slab domain decomposition.

PIConGPU distributes the simulation volume across GPUs with a spatial domain
decomposition; only next-neighbour communication (guard/halo exchange) is
required each step, which is why the simulation itself weak-scales almost
perfectly (Fig. 4) while the data-parallel training does not (Fig. 8).

For this reproduction a one-dimensional slab decomposition along a chosen
axis is sufficient: it defines which sub-volume (and therefore which
particles and which data blocks in the openPMD/streaming layer) every
simulated rank owns, and it exposes the halo-exchange byte counts consumed
by the analytic scaling models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.pic.grid import GridConfig


@dataclass(frozen=True)
class DomainSlab:
    """One rank's share of the box along the decomposition axis."""

    rank: int
    cell_start: int
    cell_stop: int
    axis: int

    @property
    def n_cells_along_axis(self) -> int:
        return self.cell_stop - self.cell_start


class SlabDecomposition:
    """Split the global grid into contiguous slabs along ``axis``."""

    def __init__(self, grid_config: GridConfig, n_ranks: int, axis: int = 0) -> None:
        if n_ranks < 1:
            raise ValueError("n_ranks must be >= 1")
        if axis not in (0, 1, 2):
            raise ValueError("axis must be 0, 1 or 2")
        if grid_config.shape[axis] < n_ranks:
            raise ValueError("cannot decompose: fewer cells along the axis than ranks")
        self.grid_config = grid_config
        self.n_ranks = int(n_ranks)
        self.axis = int(axis)

    def slabs(self) -> List[DomainSlab]:
        """Return the per-rank slabs (balanced to within one cell)."""
        n = self.grid_config.shape[self.axis]
        splits = np.linspace(0, n, self.n_ranks + 1).astype(int)
        return [DomainSlab(rank=r, cell_start=int(splits[r]), cell_stop=int(splits[r + 1]),
                           axis=self.axis)
                for r in range(self.n_ranks)]

    def rank_of_position(self, positions: np.ndarray) -> np.ndarray:
        """Owning rank of each particle position, shape ``(N,)``."""
        positions = np.asarray(positions, dtype=np.float64)
        cell = self.grid_config.cell_size[self.axis]
        n = self.grid_config.shape[self.axis]
        cells = np.mod(np.floor(positions[:, self.axis] / cell).astype(np.int64), n)
        splits = np.linspace(0, n, self.n_ranks + 1).astype(int)
        return np.clip(np.searchsorted(splits, cells, side="right") - 1, 0, self.n_ranks - 1)

    def local_extent(self, rank: int) -> Tuple[float, float]:
        """Physical interval [start, stop) owned by ``rank`` along the axis, metres."""
        slab = self.slabs()[rank]
        d = self.grid_config.cell_size[self.axis]
        return slab.cell_start * d, slab.cell_stop * d

    def halo_cells(self, guard_cells: int = 1) -> int:
        """Number of guard cells exchanged with each neighbour per step."""
        shape = list(self.grid_config.shape)
        shape[self.axis] = guard_cells
        return int(np.prod(shape))

    def halo_bytes(self, fields_per_cell: int = 6, bytes_per_value: int = 8,
                   guard_cells: int = 1) -> int:
        """Bytes exchanged with each neighbour per step (field halo only)."""
        return self.halo_cells(guard_cells) * fields_per_cell * bytes_per_value
