"""The particle-in-cell time-stepping loop with a plugin interface.

PIConGPU exposes its in-situ diagnostics (the far-field radiation plugin,
openPMD output, ISAAC visualisation, ...) as plugins invoked after every
time step.  :class:`PICSimulation` mirrors that structure: a
:class:`Plugin` registers for a hook and receives the simulation object, so
the radiation calculation (:mod:`repro.radiation`) and the openPMD streaming
output (:mod:`repro.core`) attach to the simulation exactly the way the
paper describes (two independent output plugins feeding two data streams).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro import constants
from repro.pic.deposition import (deposit_charge_cic, deposit_current_cic,
                                  deposit_current_esirkepov)
from repro.pic.fom import FigureOfMerit, figure_of_merit
from repro.pic.grid import GridConfig, YeeGrid
from repro.pic.interpolation import gather_fields
from repro.pic.kernels import boris_push_fused
from repro.pic.maxwell import YeeSolver
from repro.pic.particles import ParticleSpecies
from repro.pic.pusher import advance_positions, boris_push
from repro.utils.timer import Timer


class Plugin:
    """Base class of in-situ plugins (radiation, openPMD output, ...)."""

    #: Plugins with smaller order run first.
    order: int = 100

    def on_start(self, simulation: "PICSimulation") -> None:
        """Called once before the first step."""

    def on_step(self, simulation: "PICSimulation") -> None:
        """Called after every completed time step."""

    def on_finish(self, simulation: "PICSimulation") -> None:
        """Called after the last step of a :meth:`PICSimulation.run`."""


@dataclass
class SimulationConfig:
    """Configuration of a PIC run.

    Parameters
    ----------
    grid:
        Grid geometry.
    dt:
        Time step [s]; defaults to 99.5 % of the CFL limit.
    current_deposition:
        ``"esirkepov"`` (charge conserving, default — what PIConGPU uses) or
        ``"cic"`` (direct deposition, cheaper but not charge conserving).
    deposit_charge_density:
        Whether to additionally deposit ``rho`` every step (needed by some
        diagnostics; costs one extra scatter pass).
    kernel:
        ``"fused"`` (default) runs the gather/push/deposit hot path on the
        shared-plan bincount kernels of :mod:`repro.pic.kernels`;
        ``"reference"`` runs the original implementations (the oracle the
        fused kernels are verified against — see ``docs/performance.md``).
    """

    grid: GridConfig
    dt: Optional[float] = None
    current_deposition: str = "esirkepov"
    deposit_charge_density: bool = False
    kernel: str = "fused"

    def __post_init__(self) -> None:
        if self.dt is None:
            self.dt = self.grid.courant_time_step()
        if self.dt <= 0:
            raise ValueError("dt must be positive")
        if self.dt > self.grid.courant_time_step(safety=1.0):
            raise ValueError("dt violates the CFL limit of the grid")
        if self.current_deposition not in ("esirkepov", "cic"):
            raise ValueError("current_deposition must be 'esirkepov' or 'cic'")
        if self.kernel not in ("fused", "reference"):
            raise ValueError("kernel must be 'fused' or 'reference'")


class PICSimulation:
    """A complete PIC simulation: grid, species, field solver and plugins."""

    def __init__(self, config: SimulationConfig,
                 species: Sequence[ParticleSpecies] = ()) -> None:
        self.config = config
        self.grid = YeeGrid(config.grid)
        self.solver = YeeSolver(self.grid)
        self.species: List[ParticleSpecies] = list(species)
        self.plugins: List[Plugin] = []
        self.step_index = 0
        self.timer = Timer()
        self._started = False

    # -- setup ------------------------------------------------------------- #
    def add_species(self, species: ParticleSpecies) -> ParticleSpecies:
        self.species.append(species)
        return species

    def get_species(self, name: str) -> ParticleSpecies:
        for s in self.species:
            if s.name == name:
                return s
        raise KeyError(f"no species named {name!r}")

    def add_plugin(self, plugin: Plugin) -> Plugin:
        self.plugins.append(plugin)
        self.plugins.sort(key=lambda p: p.order)
        return plugin

    # -- core loop ---------------------------------------------------------- #
    @property
    def time(self) -> float:
        """Physical time of the current state [s]."""
        return self.step_index * self.config.dt

    @property
    def n_macro_particles(self) -> int:
        return int(sum(s.n_macro for s in self.species))

    def initialize_fields_from_charge(self) -> None:
        """Deposit the initial charge density (used for Gauss-law diagnostics)."""
        self.grid.clear_charge()
        for s in self.species:
            deposit_charge_cic(self.grid, s.positions, s.charge, s.weights,
                               kernel=self.config.kernel)

    def step(self) -> None:
        """Advance the whole system by one time step."""
        if not self._started:
            for plugin in self.plugins:
                plugin.on_start(self)
            self._started = True
        dt = self.config.dt
        extent = self.config.grid.extent
        grid = self.grid
        kernel = self.config.kernel
        push = boris_push_fused if kernel == "fused" else boris_push

        grid.clear_currents()
        for s in self.species:
            if not s.pushed:
                continue
            with self.timer.section("gather"):
                e_at_p, b_at_p = gather_fields(grid, s.positions, kernel=kernel)
            if self.config.current_deposition == "esirkepov":
                with self.timer.section("push"):
                    push(s, e_at_p, b_at_p, dt)
                    # advance_positions rebinds (never mutates) the stored
                    # array, so the pre-push positions survive without a copy
                    old_positions = s.positions
                    new_positions = advance_positions(s, dt, box_extent=extent)
                with self.timer.section("deposit"):
                    deposit_current_esirkepov(grid, old_positions, new_positions,
                                              s.charge, s.weights, dt,
                                              kernel=kernel)
            else:
                with self.timer.section("push"):
                    push(s, e_at_p, b_at_p, dt)
                    advance_positions(s, dt, box_extent=extent)
                with self.timer.section("deposit"):
                    velocities = s.velocities()
                    deposit_current_cic(grid, s.positions, velocities, s.charge,
                                        s.weights, kernel=kernel)
        if self.config.deposit_charge_density:
            with self.timer.section("deposit"):
                grid.clear_charge()
                for s in self.species:
                    deposit_charge_cic(grid, s.positions, s.charge, s.weights,
                                       kernel=kernel)
        with self.timer.section("fields"):
            self.solver.step(dt)
        self.step_index += 1
        with self.timer.section("plugins"):
            for plugin in self.plugins:
                plugin.on_step(self)

    def run(self, n_steps: int) -> FigureOfMerit:
        """Run ``n_steps`` and return the figure of merit of the run."""
        if n_steps < 1:
            raise ValueError("n_steps must be >= 1")
        start = time.perf_counter()
        for _ in range(n_steps):
            self.step()
        wall = time.perf_counter() - start
        for plugin in self.plugins:
            plugin.on_finish(self)
        return figure_of_merit(self.n_macro_particles, self.config.grid.n_cells,
                               n_steps, wall)

    # -- diagnostics --------------------------------------------------------- #
    def total_kinetic_energy(self) -> float:
        return float(sum(s.kinetic_energy() for s in self.species))

    def total_energy(self) -> float:
        """Field plus particle kinetic energy [J]."""
        return self.grid.field_energy() + self.total_kinetic_energy()

    def energy_report(self) -> Dict[str, float]:
        return {
            "electric": self.grid.electric_energy(),
            "magnetic": self.grid.magnetic_energy(),
            "kinetic": self.total_kinetic_energy(),
            "total": self.total_energy(),
        }
