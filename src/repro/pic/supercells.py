"""Supercell indexing of macro-particles.

PIConGPU organises particles into *supercells* (fixed-size tiles of cells)
to optimise data access patterns on GPUs.  In this reproduction the same
structure serves two purposes:

* it provides the cache-friendly particle ordering used when the simulation
  produces per-sub-volume training samples for the MLapp (each training
  point cloud is drawn from a local region of the plasma), and
* it is the unit at which the ML transforms (:mod:`repro.core.transforms`)
  extract "local phase-space dynamics" (Section III) — the point clouds the
  encoder sees correspond to one sub-volume each.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.pic.grid import GridConfig


@dataclass(frozen=True)
class Supercell:
    """One tile of cells: its integer index and cell-space bounds."""

    index: Tuple[int, int, int]
    lower_cell: Tuple[int, int, int]
    upper_cell: Tuple[int, int, int]


class SupercellIndex:
    """Sort particles into supercells of ``supercell_shape`` cells each."""

    def __init__(self, grid_config: GridConfig,
                 supercell_shape: Tuple[int, int, int] = (8, 8, 4)) -> None:
        self.grid_config = grid_config
        self.supercell_shape = tuple(int(s) for s in supercell_shape)
        if any(s < 1 for s in self.supercell_shape):
            raise ValueError("supercell shape entries must be >= 1")
        self.counts = tuple(
            int(np.ceil(n / s)) for n, s in zip(grid_config.shape, self.supercell_shape))

    @property
    def n_supercells(self) -> int:
        return int(np.prod(self.counts))

    def supercells(self) -> Iterator[Supercell]:
        """Iterate over all supercells in row-major order."""
        sx, sy, sz = self.supercell_shape
        nx, ny, nz = self.grid_config.shape
        for ix in range(self.counts[0]):
            for iy in range(self.counts[1]):
                for iz in range(self.counts[2]):
                    lower = (ix * sx, iy * sy, iz * sz)
                    upper = (min((ix + 1) * sx, nx), min((iy + 1) * sy, ny),
                             min((iz + 1) * sz, nz))
                    yield Supercell((ix, iy, iz), lower, upper)

    def cell_indices(self, positions: np.ndarray) -> np.ndarray:
        """Integer cell index of each particle, shape ``(N, 3)``."""
        positions = np.asarray(positions, dtype=np.float64)
        cell = np.asarray(self.grid_config.cell_size)
        shape = np.asarray(self.grid_config.shape)
        idx = np.floor(positions / cell).astype(np.int64)
        return np.mod(idx, shape)

    def supercell_indices(self, positions: np.ndarray) -> np.ndarray:
        """Supercell index triple of each particle, shape ``(N, 3)``."""
        cells = self.cell_indices(positions)
        return cells // np.asarray(self.supercell_shape)

    def flat_indices(self, positions: np.ndarray) -> np.ndarray:
        """Flattened (row-major) supercell id of each particle, shape ``(N,)``."""
        sc = self.supercell_indices(positions)
        cx, cy, cz = self.counts
        return (sc[:, 0] * cy + sc[:, 1]) * cz + sc[:, 2]

    def sort_order(self, positions: np.ndarray) -> np.ndarray:
        """Permutation sorting particles by supercell id (PIConGPU-style ordering)."""
        return np.argsort(self.flat_indices(positions), kind="stable")

    def group_by_supercell(self, positions: np.ndarray) -> Dict[int, np.ndarray]:
        """Map flat supercell id -> array of particle indices in that supercell."""
        flat = self.flat_indices(positions)
        order = np.argsort(flat, kind="stable")
        sorted_flat = flat[order]
        boundaries = np.flatnonzero(np.diff(sorted_flat)) + 1
        groups = np.split(order, boundaries)
        ids = sorted_flat[np.concatenate([[0], boundaries])] if len(order) else np.array([], dtype=np.int64)
        return {int(i): g for i, g in zip(ids, groups)}

    def occupancy(self, positions: np.ndarray) -> np.ndarray:
        """Number of particles per supercell, shape ``counts``."""
        flat = self.flat_indices(positions)
        counts = np.bincount(flat, minlength=self.n_supercells)
        return counts.reshape(self.counts)
