"""FDTD Maxwell solver on the Yee grid with periodic boundaries.

The curl operators are implemented with :func:`numpy.roll`, which realises
periodic boundary conditions without any halo bookkeeping.  The update is
the standard leapfrog

.. math::

    B^{n+1/2} &= B^{n-1/2} - \\Delta t\\, \\nabla \\times E^n \\\\
    E^{n+1}   &= E^n + \\Delta t\\,(c^2 \\nabla \\times B^{n+1/2}
                 - J^{n+1/2} / \\varepsilon_0)

split into two half B-pushes around the E update so that E and B are both
known at integer time steps when diagnostics run.
"""

from __future__ import annotations

import numpy as np

from repro import constants
from repro.pic.grid import YeeGrid


class YeeSolver:
    """Explicit FDTD solver bound to a :class:`YeeGrid`."""

    def __init__(self, grid: YeeGrid) -> None:
        self.grid = grid

    # -- curl operators --------------------------------------------------- #
    def curl_e(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Curl of E evaluated at the B component locations (forward differences)."""
        g = self.grid
        dx, dy, dz = g.config.cell_size
        dez_dy = (np.roll(g.Ez, -1, axis=1) - g.Ez) / dy
        dey_dz = (np.roll(g.Ey, -1, axis=2) - g.Ey) / dz
        dex_dz = (np.roll(g.Ex, -1, axis=2) - g.Ex) / dz
        dez_dx = (np.roll(g.Ez, -1, axis=0) - g.Ez) / dx
        dey_dx = (np.roll(g.Ey, -1, axis=0) - g.Ey) / dx
        dex_dy = (np.roll(g.Ex, -1, axis=1) - g.Ex) / dy
        return dez_dy - dey_dz, dex_dz - dez_dx, dey_dx - dex_dy

    def curl_b(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Curl of B evaluated at the E component locations (backward differences)."""
        g = self.grid
        dx, dy, dz = g.config.cell_size
        dbz_dy = (g.Bz - np.roll(g.Bz, 1, axis=1)) / dy
        dby_dz = (g.By - np.roll(g.By, 1, axis=2)) / dz
        dbx_dz = (g.Bx - np.roll(g.Bx, 1, axis=2)) / dz
        dbz_dx = (g.Bz - np.roll(g.Bz, 1, axis=0)) / dx
        dby_dx = (g.By - np.roll(g.By, 1, axis=0)) / dx
        dbx_dy = (g.Bx - np.roll(g.Bx, 1, axis=1)) / dy
        return dbz_dy - dby_dz, dbx_dz - dbz_dx, dby_dx - dbx_dy

    # -- updates ----------------------------------------------------------- #
    def push_b(self, dt: float) -> None:
        """Advance B by ``dt`` using the curl of E."""
        cx, cy, cz = self.curl_e()
        self.grid.Bx -= dt * cx
        self.grid.By -= dt * cy
        self.grid.Bz -= dt * cz

    def push_e(self, dt: float) -> None:
        """Advance E by ``dt`` using the curl of B and the current density."""
        c2 = constants.SPEED_OF_LIGHT ** 2
        inv_eps0 = 1.0 / constants.EPSILON_0
        cx, cy, cz = self.curl_b()
        self.grid.Ex += dt * (c2 * cx - inv_eps0 * self.grid.Jx)
        self.grid.Ey += dt * (c2 * cy - inv_eps0 * self.grid.Jy)
        self.grid.Ez += dt * (c2 * cz - inv_eps0 * self.grid.Jz)

    def step(self, dt: float) -> None:
        """One full field update: half B, full E, half B."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        if dt > self.grid.config.courant_time_step(safety=1.0):
            raise ValueError("time step violates the CFL stability limit")
        self.push_b(0.5 * dt)
        self.push_e(dt)
        self.push_b(0.5 * dt)

    # -- diagnostics -------------------------------------------------------- #
    def gauss_error(self, rho: np.ndarray | None = None) -> float:
        """RMS residual of Gauss's law ``div E - rho / eps0`` over the grid."""
        g = self.grid
        dx, dy, dz = g.config.cell_size
        div_e = ((g.Ex - np.roll(g.Ex, 1, axis=0)) / dx
                 + (g.Ey - np.roll(g.Ey, 1, axis=1)) / dy
                 + (g.Ez - np.roll(g.Ez, 1, axis=2)) / dz)
        rho = g.rho if rho is None else rho
        residual = div_e - rho / constants.EPSILON_0
        return float(np.sqrt(np.mean(residual ** 2)))
