"""Fused hot-path kernels for the PIC inner loop.

The reference implementations in :mod:`repro.pic.interpolation` and
:mod:`repro.pic.deposition` are written for clarity: every component gather
recomputes its CIC indices and weights from scratch (6× per step), and all
scatters go through ``np.add.at``, which is unbuffered and roughly an order
of magnitude slower than a histogram-style scatter.  This module provides
numerically equivalent kernels organised for speed:

* :class:`CICPlanSet` — a shared CIC index/weight plan.  On a Yee lattice
  every component stagger is a combination of per-axis offsets ``0`` and
  ``1/2``, so the floor/wrap/fraction work is done once per (axis, offset)
  and every component's trilinear plan is composed from the cached pieces.
* :class:`CICPlan` — flattened linear indices plus the eight corner weights
  of one stagger; gathers are a single fancy-index + ``einsum``, scatters a
  single ``np.bincount`` on the raveled indices.
* :func:`deposit_current_esirkepov_fused` — the first-order Esirkepov
  scheme evaluated in bounded particle chunks, so the per-particle stencil
  temporaries of the reference path become a fixed working set, with all
  three current components scattered by one fused ``np.bincount``.
* :func:`boris_push_fused` — the Boris rotation with in-place updates and
  one reused half-kick array instead of a fresh allocation per term.

Layout note: all stencil arrays put the *node* axes first and the particle
axis last (``(8, N)`` corner plans, ``(2, 3, 3, m)`` Esirkepov blocks).
With the particle axis innermost every broadcast ufunc runs long contiguous
inner loops; the particle-first layout spends most of its time iterating
2- or 4-element inner loops and is several times slower at laptop particle
counts.

All kernels are bit-compatible with the reference path up to floating-point
summation order; ``tests/pic/test_kernels_fused.py`` pins the equivalence
(including particles straddling the periodic boundary) and the discrete
continuity invariant of the fused Esirkepov path.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro import constants
from repro.pic.grid import STAGGER, YeeGrid
from repro.pic.particles import ParticleSpecies

#: Particles per Esirkepov chunk: bounds the (3, 2, 3, 3, chunk) temporaries
#: to a few MB regardless of the total particle count.
DEFAULT_CHUNK = 16384

_STENCIL3 = np.arange(3)


def _hat_weights(xi: np.ndarray, base: np.ndarray, n_nodes: int = 4) -> np.ndarray:
    """First-order (hat-function) shape weights on a local node stencil.

    Parameters
    ----------
    xi:
        Normalised particle coordinates along one axis, shape ``(N,)``.
    base:
        Integer index of the first node of the local stencil, shape ``(N,)``.

    Returns
    -------
    ``(N, n_nodes)`` array with ``S[s] = max(0, 1 - |xi - (base + s)|)``.
    """
    nodes = base[:, None] + np.arange(n_nodes)[None, :]
    return np.maximum(0.0, 1.0 - np.abs(xi[:, None] - nodes))


class CICPlan:
    """Precomputed trilinear gather/scatter plan for one stagger.

    Holds the raveled (periodic) linear indices of the eight stencil corners
    and the matching CIC weights in node-first ``(8, N)`` layout, so every
    gather/scatter against the same particle positions is a single
    vectorised pass with no index recompute.
    """

    __slots__ = ("lin", "weights", "shape", "n_cells")

    def __init__(self, lin: np.ndarray, weights: np.ndarray,
                 shape: Tuple[int, int, int]) -> None:
        self.lin = lin              #: ``(8, N)`` int64 raveled corner indices
        self.weights = weights      #: ``(8, N)`` weights; corner sums are 1
        self.shape = shape
        self.n_cells = int(shape[0]) * int(shape[1]) * int(shape[2])

    @classmethod
    def build(cls, positions: np.ndarray, cell_size: Tuple[float, float, float],
              shape: Tuple[int, int, int],
              stagger: Tuple[float, float, float]) -> "CICPlan":
        """Build a standalone plan (one stagger, no cross-component sharing)."""
        return CICPlanSet(positions, cell_size, shape).plan(stagger)

    def gather(self, field: np.ndarray) -> np.ndarray:
        """Interpolate ``field`` to the planned particle positions."""
        flat = field.reshape(-1)
        return np.einsum("cn,cn->n", self.weights, flat[self.lin])

    def scatter_add(self, target: np.ndarray, values: np.ndarray) -> None:
        """Scatter-add per-particle ``values`` with the planned weights."""
        contrib = self.weights * values
        flat = np.bincount(self.lin.reshape(-1), weights=contrib.reshape(-1),
                           minlength=self.n_cells)
        target += flat.reshape(target.shape)


class CICPlanSet:
    """Shared CIC plans for one set of particle positions on one grid.

    The Yee staggers (:data:`repro.pic.grid.STAGGER`) only ever use per-axis
    offsets ``0`` and ``1/2``; the set computes the floor/wrap/fraction work
    once per (axis, offset) pair (at most 6 passes instead of 3 per
    component) and composes the eight-corner plan of any stagger from the
    cached per-axis pieces.  Plans themselves are cached too, so the J
    components reuse the E-component plans wherever the staggers coincide.
    """

    def __init__(self, positions: np.ndarray,
                 cell_size: Tuple[float, float, float],
                 shape: Tuple[int, int, int]) -> None:
        self.positions = np.asarray(positions, dtype=np.float64)
        self.cell_size = tuple(float(d) for d in cell_size)
        self.shape = tuple(int(n) for n in shape)
        nx, ny, nz = self.shape
        self._strides = (ny * nz, nz, 1)
        self._xi = None                      # lazily built (3, N) cell units
        self._axis_cache: Dict[float, tuple] = {}
        self._plan_cache: Dict[Tuple[float, float, float], CICPlan] = {}

    def _offset(self, offset: float) -> tuple:
        """Stride-scaled wrapped index pairs and weights of all three axes.

        Returns ``(idx, w)`` with ``idx`` a ``(3, 2, N)`` int64 array holding
        the stride-scaled lower/upper wrapped indices per axis and ``w`` the
        matching ``(3, 2, N)`` CIC weights ``(1 - frac, frac)``.  All three
        axes share one vectorised pass (the Yee staggers only use per-axis
        offsets 0 and 1/2, so at most two passes cover every component).
        """
        cached = self._axis_cache.get(offset)
        if cached is None:
            if self._xi is None:
                inv_cell = np.array([1.0 / d for d in self.cell_size])[:, None]
                # out= forces C order: positions.T is F-ordered and ufuncs
                # would propagate that layout, leaving the particle axis
                # strided in every later broadcast
                self._xi = np.empty((3, self.positions.shape[0]))
                np.multiply(self.positions.T, inv_cell, out=self._xi)
            nvec = np.array(self.shape, dtype=np.int64)[:, None]
            xi = self._xi - offset
            i0 = np.floor(xi).astype(np.int64)
            frac = xi - i0
            i0 %= nvec
            i1 = i0 + 1
            i1[i1 == nvec] = 0
            idx = np.stack((i0, i1), axis=1)                     # (3, 2, N)
            idx *= np.array(self._strides, dtype=np.int64)[:, None, None]
            w = np.stack((1.0 - frac, frac), axis=1)             # (3, 2, N)
            cached = (idx, w)
            self._axis_cache[offset] = cached
        return cached

    def _axis(self, axis: int, offset: float) -> tuple:
        """One axis' ``(2, N)`` stride-scaled index and weight pair."""
        idx, w = self._offset(offset)
        return idx[axis], w[axis]

    def plan(self, stagger: Tuple[float, float, float]) -> CICPlan:
        """The (cached) eight-corner plan of one component stagger."""
        key = tuple(stagger)
        plan = self._plan_cache.get(key)
        if plan is None:
            ix, wx = self._axis(0, stagger[0])
            iy, wy = self._axis(1, stagger[1])
            iz, wz = self._axis(2, stagger[2])
            n = self.positions.shape[0]
            # compose all eight corners in two broadcast adds / multiplies;
            # node axes lead so the inner loops run over the particle axis
            lin = (ix[:, None, None, :] + iy[None, :, None, :]
                   + iz[None, None, :, :]).reshape(8, n)
            weights = (wx[:, None, None, :] * wy[None, :, None, :]
                       * wz[None, None, :, :]).reshape(8, n)
            plan = CICPlan(lin, weights, self.shape)
            self._plan_cache[key] = plan
        return plan


# --------------------------------------------------------------------------- #
# gather
# --------------------------------------------------------------------------- #
def gather_fields_fused(grid: YeeGrid, positions: np.ndarray
                        ) -> Tuple[np.ndarray, np.ndarray]:
    """Interpolate E and B to the particles through one shared plan set."""
    positions = np.asarray(positions, dtype=np.float64)
    if positions.ndim != 2 or positions.shape[1] != 3:
        raise ValueError("positions must have shape (N, 3)")
    plans = CICPlanSet(positions, grid.config.cell_size, grid.shape)
    n = positions.shape[0]
    e_fields = np.empty((n, 3), dtype=np.float64)
    b_fields = np.empty((n, 3), dtype=np.float64)
    for axis, name in enumerate(("Ex", "Ey", "Ez")):
        e_fields[:, axis] = plans.plan(STAGGER[name]).gather(grid.component(name))
    for axis, name in enumerate(("Bx", "By", "Bz")):
        b_fields[:, axis] = plans.plan(STAGGER[name]).gather(grid.component(name))
    return e_fields, b_fields


# --------------------------------------------------------------------------- #
# CIC scatters
# --------------------------------------------------------------------------- #
def deposit_charge_cic_fused(grid: YeeGrid, positions: np.ndarray, charge: float,
                             weights: np.ndarray) -> np.ndarray:
    """Bincount-based CIC charge deposition (adds into ``grid.rho``)."""
    values = (charge / grid.config.cell_volume) * np.asarray(weights,
                                                             dtype=np.float64)
    plan = CICPlan.build(positions, grid.config.cell_size, grid.shape,
                         STAGGER["rho"])
    plan.scatter_add(grid.rho, values)
    return grid.rho


def deposit_current_cic_fused(grid: YeeGrid, positions: np.ndarray,
                              velocities: np.ndarray, charge: float,
                              weights: np.ndarray) -> None:
    """Bincount-based direct CIC current deposition onto the staggered J grid."""
    weights = np.asarray(weights, dtype=np.float64)
    factor = (charge / grid.config.cell_volume) * weights
    plans = CICPlanSet(positions, grid.config.cell_size, grid.shape)
    for axis, name in enumerate(("Jx", "Jy", "Jz")):
        plans.plan(STAGGER[name]).scatter_add(grid.component(name),
                                              factor * velocities[:, axis])


# --------------------------------------------------------------------------- #
# Esirkepov current deposition (chunked, fused bincount scatter)
# --------------------------------------------------------------------------- #
def _outer_term(a_b: np.ndarray, b_b: np.ndarray, s0_c: np.ndarray,
                ds_c: np.ndarray) -> np.ndarray:
    """The Esirkepov transverse factor over axes ``b`` (rows) and ``c``.

    Algebraically ``s0_b⊗s0_c + ds_b⊗s0_c/2 + s0_b⊗ds_c/2 + ds_b⊗ds_c/3``,
    grouped into two outer products with the row factors
    ``a_b = s0_b + ds_b/2`` and ``b_b = s0_b/2 + ds_b/3`` precomputed (they
    are shared between components).  Shapes follow the inputs: ``(k, m)``
    rows × ``(k, m)`` columns give a ``(k, k, m)`` node-first block.
    """
    return a_b[:, None, :] * s0_c[None, :, :] + b_b[:, None, :] * ds_c[None, :, :]


def deposit_current_esirkepov_fused(grid: YeeGrid, old_positions: np.ndarray,
                                    new_positions: np.ndarray, charge: float,
                                    weights: np.ndarray, dt: float,
                                    chunk_size: int = DEFAULT_CHUNK) -> None:
    """Charge-conserving Esirkepov deposition with a bounded working set.

    Numerically equivalent (up to summation order and identically-zero
    stencil planes, which the reference path scatters as exact zeros or
    round-off) to :func:`repro.pic.deposition.deposit_current_esirkepov`, but
    particles are processed in chunks of at most ``chunk_size`` so the
    per-axis ``(2, 3, 3, chunk)`` weight block and linear-index block are the
    only large temporaries, and all three current components are scattered
    with a single ``np.bincount`` over ``3 * n_cells`` fused bins instead of
    three unbuffered ``np.add.at`` calls against broadcast index arrays.
    """
    old_positions = np.asarray(old_positions, dtype=np.float64)
    new_positions = np.asarray(new_positions, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    if old_positions.shape != new_positions.shape:
        raise ValueError("old and new positions must have the same shape")
    if dt <= 0:
        raise ValueError("dt must be positive")
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    n = old_positions.shape[0]
    if n == 0:
        return
    dx, dy, dz = grid.config.cell_size
    nx, ny, nz = grid.shape
    n_cells = nx * ny * nz
    inv_cell = np.array([1.0 / dx, 1.0 / dy, 1.0 / dz])[:, None]
    factor = (charge / grid.config.cell_volume) * weights / dt     # (N,)

    # flat views of the (C-contiguous) current arrays; += below is in place
    j_flat = (grid.Jx.reshape(-1), grid.Jy.reshape(-1), grid.Jz.reshape(-1))
    nvec = np.array([nx, ny, nz], dtype=np.int64)[:, None, None]
    svec = np.array([ny * nz, nz, 1], dtype=np.int64)[:, None, None]

    # One working set reused for every full chunk: the three per-axis weight
    # blocks and their raveled node indices, [component, along-axis,
    # transverse-1, transverse-2, particle].  Because a particle moves less
    # than one cell, old and new shape functions share a THREE-node stencil
    # anchored at floor(min(xi0, xi1)); the along-axis prefix sum then needs
    # only TWO planes — the third is the total shape-function change, which
    # vanishes identically (charge conservation) and would scatter pure
    # round-off.  That leaves 3 * 2*3*3 = 54 scattered values per particle
    # against the naive 3 * 4^3 = 192.
    m0 = min(chunk_size, n)
    big_lin0 = np.empty((3, 2, 3, 3, m0), dtype=np.int64)
    big_w0 = np.empty((3, 2, 3, 3, m0), dtype=np.float64)

    for start in range(0, n, chunk_size):
        stop = min(start + chunk_size, n)
        m = stop - start
        if m == m0:
            big_lin, big_w = big_lin0, big_w0
        else:                                       # final partial chunk
            big_lin = np.empty((3, 2, 3, 3, m), dtype=np.int64)
            big_w = np.empty((3, 2, 3, 3, m), dtype=np.float64)
        # (3, m) cell-unit coordinates, axis-major; out= forces C order
        # (the transposed position slices are F-ordered and ufuncs would
        # otherwise keep that layout, striding every later particle-axis loop)
        xi0 = np.empty((3, m))
        xi1 = np.empty((3, m))
        np.multiply(old_positions[start:stop].T, inv_cell, out=xi0)
        np.multiply(new_positions[start:stop].T, inv_cell, out=xi1)
        if np.any(np.abs(xi1 - xi0) >= 1.0):
            raise ValueError("Esirkepov deposition requires particles to move "
                             "less than one cell per step")
        # Shared 3-node stencil: both hats live on nodes base .. base+2; all
        # three axes share one vectorised (3, 3, m) pass.
        base = np.floor(np.minimum(xi0, xi1)).astype(np.int64)    # (3, m)
        nodes = base[:, None, :] + _STENCIL3[None, :, None]       # (3, 3, m)
        s0 = np.maximum(0.0, 1.0 - np.abs(xi0[:, None, :] - nodes))
        ds = np.maximum(0.0, 1.0 - np.abs(xi1[:, None, :] - nodes))
        ds -= s0

        # Stride-scaled wrapped stencil indices; a node at (i, j, k) has
        # raveled index lin_all[0, i] + lin_all[1, j] + lin_all[2, k].
        lin_all = nodes % nvec
        lin_all *= svec

        # Transverse row factors shared between the three components:
        # term_b,c = (s0_b + ds_b/2) ⊗ s0_c + (s0_b/2 + ds_b/3) ⊗ ds_c.
        # The per-particle charge factor rides on the column factors (one
        # (3, 3, m) pass instead of a (m,) rescale per component) and the
        # per-axis cell size on the along-axis ds (one pass for all three).
        a_row = s0 + 0.5 * ds                       # (3, 3, m); axis 2 unused
        b_row = 0.5 * s0 + (1.0 / 3.0) * ds
        scale = factor[start:stop]
        s0_col = s0 * scale[None, None, :]
        ds_col = ds * scale[None, None, :]
        ds_axis = ds * np.array([-dx, -dy, -dz])[:, None, None]

        # Per component: the (pre-scaled, truncated) ds factor, its
        # transverse term, and the raveled indices arranged [along-axis,
        # transverse-1, transverse-2]; the along-axis index also carries the
        # component offset into the fused 3 * n_cells bins.
        per_axis = (
            (ds_axis[0, :2],
             _outer_term(a_row[1], b_row[1], s0_col[2], ds_col[2]),
             lin_all[0, :2], lin_all[1], lin_all[2]),
            (ds_axis[1, :2],
             _outer_term(a_row[0], b_row[0], s0_col[2], ds_col[2]),
             lin_all[1, :2], lin_all[0], lin_all[2]),
            (ds_axis[2, :2],
             _outer_term(a_row[0], b_row[0], s0_col[1], ds_col[1]),
             lin_all[2, :2], lin_all[0], lin_all[1]),
        )
        for axis, (ds_scaled, term, la, lb, lc) in enumerate(per_axis):
            block = big_w[axis]
            np.multiply(ds_scaled[:, None, None, :], term[None, :, :, :],
                        out=block)
            # prefix sum along the (truncated) node axis: one slice add
            block[1] += block[0]
            lin = big_lin[axis]
            lbc = lb[:, None, :] + lc[None, :, :]
            np.add((la + axis * n_cells)[:, None, None, :],
                   lbc[None, :, :, :], out=lin)
        fused = np.bincount(big_lin.reshape(-1), weights=big_w.reshape(-1),
                            minlength=3 * n_cells).reshape(3, n_cells)
        for axis in range(3):
            target = j_flat[axis]
            target += fused[axis]


# --------------------------------------------------------------------------- #
# particle push
# --------------------------------------------------------------------------- #
def _cross(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Row-wise cross product of two ``(N, 3)`` arrays.

    Equivalent to ``np.cross(a, b)`` but written out component-wise:
    ``np.cross`` routes through ``moveaxis``/``empty``/slice assignments with
    enough per-call overhead to show up at laptop particle counts.
    """
    out = np.empty_like(a)
    a0, a1, a2 = a[:, 0], a[:, 1], a[:, 2]
    b0, b1, b2 = b[:, 0], b[:, 1], b[:, 2]
    out[:, 0] = a1 * b2 - a2 * b1
    out[:, 1] = a2 * b0 - a0 * b2
    out[:, 2] = a0 * b1 - a1 * b0
    return out


def boris_push_fused(species: ParticleSpecies, e_fields: np.ndarray,
                     b_fields: np.ndarray, dt: float) -> None:
    """Relativistic Boris push with in-place momentum updates.

    Same scheme as :func:`repro.pic.pusher.boris_push` (half electric kick,
    magnetic rotation, half electric kick) but the half-kick array is
    computed once and reused, the rotation vector is scaled in place into
    the ``s`` vector, and ``species.momenta`` is updated in place instead of
    rebinding freshly allocated arrays for every intermediate.
    """
    if not species.pushed:
        return
    if dt <= 0:
        raise ValueError("dt must be positive")
    e_fields = np.asarray(e_fields, dtype=np.float64)
    b_fields = np.asarray(b_fields, dtype=np.float64)
    if e_fields.shape != species.momenta.shape or b_fields.shape != species.momenta.shape:
        raise ValueError("field arrays must have shape (N, 3)")

    qmdt2 = species.charge * dt / (2.0 * species.mass * constants.SPEED_OF_LIGHT)
    half_kick = qmdt2 * e_fields

    u = species.momenta
    u += half_kick                     # u_minus
    gamma = np.sqrt(1.0 + np.einsum("ij,ij->i", u, u))

    t_vec = b_fields * ((species.charge * dt / (2.0 * species.mass)) / gamma)[:, None]
    t_sq = np.einsum("ij,ij->i", t_vec, t_vec)
    u_prime = u + _cross(u, t_vec)
    t_vec *= (2.0 / (1.0 + t_sq))[:, None]   # t_vec becomes the s vector
    u += _cross(u_prime, t_vec)              # u_plus
    u += half_kick
