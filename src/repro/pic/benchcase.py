"""The generic weak-scaling benchmark case (the paper's Fig. 4 workload).

To prove scalability "for general plasma physics cases", the paper uses a
more challenging test case than the KHI — the TWEAC-FOM benchmark — with a
higher particle-per-cell ratio, as the weak-scaling workload.  This module
provides the equivalent workload for this repository's simulator: a uniform,
warm, drifting plasma with a configurable (high) particle-per-cell count,
plus the weak-scaling helper that assigns one such volume per simulated GPU.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro import constants
from repro.pic.fom import FigureOfMerit
from repro.pic.grid import GridConfig
from repro.pic.particles import ParticleSpecies
from repro.pic.simulation import PICSimulation, SimulationConfig
from repro.utils.rng import RandomState, seeded_rng


@dataclass
class ScalingBenchmarkConfig:
    """A uniform-plasma benchmark volume (per simulated GPU).

    The defaults use a higher particle-per-cell ratio than the KHI setup
    (the paper's FOM benchmark does the same) so the run is dominated by
    particle updates, which is what the FOM weights at 90 %.
    """

    cells_per_gpu: Tuple[int, int, int] = (16, 16, 4)
    particles_per_cell: int = 24
    cell_size: float = constants.PAPER_CELL_SIZE
    density: float = 1.0e20
    drift_beta: float = 0.05
    thermal_beta: float = 0.01
    #: hot-path kernel selection: ``"fused"`` (default) or ``"reference"``
    kernel: str = "fused"
    seed: Optional[int] = 7

    @property
    def macro_particles_per_gpu(self) -> int:
        return int(np.prod(self.cells_per_gpu)) * self.particles_per_cell

    def grid_config(self, n_gpus: int = 1, axis: int = 0) -> GridConfig:
        """Weak-scaled grid: the volume grows with ``n_gpus`` along ``axis``."""
        if n_gpus < 1:
            raise ValueError("n_gpus must be >= 1")
        shape = list(self.cells_per_gpu)
        shape[axis] *= n_gpus
        return GridConfig(shape=tuple(shape), cell_size=(self.cell_size,) * 3)


def make_benchmark_simulation(config: ScalingBenchmarkConfig | None = None,
                              n_gpus: int = 1,
                              rng: RandomState = None) -> PICSimulation:
    """Create the uniform-plasma benchmark simulation for ``n_gpus`` volumes."""
    config = config or ScalingBenchmarkConfig()
    rng = seeded_rng(config.seed if rng is None else rng)
    grid_config = config.grid_config(n_gpus)
    extent = np.asarray(grid_config.extent)

    n_macro = config.macro_particles_per_gpu * n_gpus
    positions = rng.uniform(0.0, 1.0, size=(n_macro, 3)) * extent
    beta = rng.normal(0.0, config.thermal_beta, size=(n_macro, 3))
    beta[:, 0] += config.drift_beta
    speed = np.linalg.norm(beta, axis=1)
    np.clip(speed, None, 0.99, out=speed)
    gamma = 1.0 / np.sqrt(1.0 - speed ** 2)
    momenta = beta * gamma[:, None]
    weight = config.density * grid_config.cell_volume / config.particles_per_cell
    weights = np.full(n_macro, weight)

    electrons = ParticleSpecies.electrons(positions, momenta, weights)
    ions = ParticleSpecies.protons(positions.copy(), momenta.copy(), weights.copy(),
                                   pushed=True)
    simulation = PICSimulation(SimulationConfig(grid=grid_config, kernel=config.kernel),
                               species=[electrons, ions])
    simulation.initialize_fields_from_charge()
    return simulation


def measured_weak_scaling(config: ScalingBenchmarkConfig | None = None,
                          gpu_counts: Tuple[int, ...] = (1, 2, 4),
                          n_steps: int = 2,
                          rng: RandomState = None) -> List[Tuple[int, FigureOfMerit]]:
    """Run the benchmark case at several (simulated-GPU) sizes and return FOMs.

    On a single machine the "GPUs" share the same process, so this measures
    the algorithmic weak-scaling behaviour of the NumPy implementation (how
    the per-step cost grows with the volume), which the FOM model then
    extrapolates with the machine parameters.
    """
    config = config or ScalingBenchmarkConfig()
    results: List[Tuple[int, FigureOfMerit]] = []
    for n_gpus in gpu_counts:
        simulation = make_benchmark_simulation(config, n_gpus=n_gpus, rng=rng)
        fom = simulation.run(n_steps)
        results.append((int(n_gpus), fom))
    return results
