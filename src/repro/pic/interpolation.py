"""Cloud-in-cell (CIC) field gather.

Every Yee component is interpolated to the particle positions with trilinear
weights evaluated on its own staggered sub-grid, matching how PIConGPU
assigns fields to macro-particles (first-order assignment function).

:func:`gather_fields` dispatches between two numerically equivalent
implementations selected by ``kernel``:

* ``"fused"`` (default) — one shared index/weight plan reused across all six
  components (:mod:`repro.pic.kernels`), the hot path of the simulator,
* ``"reference"`` — the per-component scalar-indexed implementation kept as
  the readable oracle the fused kernels are tested against.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.pic.grid import STAGGER, YeeGrid
from repro.pic.kernels import gather_fields_fused


def _cic_indices_weights(positions: np.ndarray, cell_size: Tuple[float, float, float],
                         shape: Tuple[int, int, int],
                         stagger: Tuple[float, float, float]):
    """Return per-axis lower indices and fractional weights for CIC.

    Parameters
    ----------
    positions:
        ``(N, 3)`` metres.
    cell_size, shape, stagger:
        Grid geometry and component stagger in cell fractions.

    Returns
    -------
    ``(i0, frac)`` with ``i0`` integer arrays ``(N, 3)`` (*unwrapped* — the
    callers apply the periodic ``% shape`` wrap, and the Esirkepov stencil
    needs the raw floor index) and ``frac`` the fractional offsets ``(N, 3)``
    in ``[0, 1)``.
    """
    pos = np.asarray(positions, dtype=np.float64)
    cell = np.asarray(cell_size, dtype=np.float64)
    offset = np.asarray(stagger, dtype=np.float64)
    xi = pos / cell - offset
    i0 = np.floor(xi).astype(np.int64)
    frac = xi - i0
    return i0, frac


def gather_component(field: np.ndarray, positions: np.ndarray,
                     cell_size: Tuple[float, float, float],
                     stagger: Tuple[float, float, float]) -> np.ndarray:
    """Trilinearly interpolate one staggered field component to particles."""
    shape = field.shape
    i0, frac = _cic_indices_weights(positions, cell_size, shape, stagger)
    nx, ny, nz = shape
    out = np.zeros(positions.shape[0], dtype=np.float64)
    wx = (1.0 - frac[:, 0], frac[:, 0])
    wy = (1.0 - frac[:, 1], frac[:, 1])
    wz = (1.0 - frac[:, 2], frac[:, 2])
    ix = (i0[:, 0] % nx, (i0[:, 0] + 1) % nx)
    iy = (i0[:, 1] % ny, (i0[:, 1] + 1) % ny)
    iz = (i0[:, 2] % nz, (i0[:, 2] + 1) % nz)
    for di in (0, 1):
        for dj in (0, 1):
            for dk in (0, 1):
                w = wx[di] * wy[dj] * wz[dk]
                out += w * field[ix[di], iy[dj], iz[dk]]
    return out


def gather_fields(grid: YeeGrid, positions: np.ndarray,
                  kernel: str = "fused") -> Tuple[np.ndarray, np.ndarray]:
    """Interpolate E and B to the particle positions.

    Parameters
    ----------
    kernel:
        ``"fused"`` (default, shared-plan bincount kernels) or
        ``"reference"`` (the original per-component implementation).

    Returns
    -------
    ``(E, B)`` each of shape ``(N, 3)`` in SI units (V/m and T).
    """
    if kernel == "fused":
        return gather_fields_fused(grid, positions)
    if kernel != "reference":
        raise ValueError(f"kernel must be 'fused' or 'reference', got {kernel!r}")
    positions = np.asarray(positions, dtype=np.float64)
    if positions.ndim != 2 or positions.shape[1] != 3:
        raise ValueError("positions must have shape (N, 3)")
    cell = grid.config.cell_size
    e_fields = np.empty((positions.shape[0], 3), dtype=np.float64)
    b_fields = np.empty((positions.shape[0], 3), dtype=np.float64)
    for axis, name in enumerate(("Ex", "Ey", "Ez")):
        e_fields[:, axis] = gather_component(grid.component(name), positions,
                                             cell, STAGGER[name])
    for axis, name in enumerate(("Bx", "By", "Bz")):
        b_fields[:, axis] = gather_component(grid.component(name), positions,
                                             cell, STAGGER[name])
    return e_fields, b_fields
