"""The Yee grid holding electromagnetic fields and current density.

Field components live on the standard staggered Yee lattice:

* ``Ex`` at ``(i+1/2, j,     k    )``
* ``Ey`` at ``(i,     j+1/2, k    )``
* ``Ez`` at ``(i,     j,     k+1/2)``
* ``Bx`` at ``(i,     j+1/2, k+1/2)``
* ``By`` at ``(i+1/2, j,     k+1/2)``
* ``Bz`` at ``(i+1/2, j+1/2, k    )``
* ``Jx/Jy/Jz`` co-located with ``Ex/Ey/Ez``
* charge density ``rho`` at the cell nodes ``(i, j, k)``

All arrays have shape ``(nx, ny, nz)``; boundaries are periodic, implemented
with ``numpy.roll`` in the solver.  Storage is C-ordered with ``z`` fastest,
which keeps the roll/curl operations on the innermost axis contiguous
(cache-friendliness, per the optimisation guide).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from repro import constants
from repro.utils.validation import check_positive

#: Stagger offsets (in fractions of a cell) of every field component.
STAGGER: Dict[str, Tuple[float, float, float]] = {
    "Ex": (0.5, 0.0, 0.0),
    "Ey": (0.0, 0.5, 0.0),
    "Ez": (0.0, 0.0, 0.5),
    "Bx": (0.0, 0.5, 0.5),
    "By": (0.5, 0.0, 0.5),
    "Bz": (0.5, 0.5, 0.0),
    "Jx": (0.5, 0.0, 0.0),
    "Jy": (0.0, 0.5, 0.0),
    "Jz": (0.0, 0.0, 0.5),
    "rho": (0.0, 0.0, 0.0),
}


@dataclass(frozen=True)
class GridConfig:
    """Geometry of the simulation box.

    Parameters
    ----------
    shape:
        Number of cells ``(nx, ny, nz)``.
    cell_size:
        Cell edge lengths ``(dx, dy, dz)`` in metres.  The paper uses cubic
        cells of 93.5 µm.
    """

    shape: Tuple[int, int, int]
    cell_size: Tuple[float, float, float] = (constants.PAPER_CELL_SIZE,) * 3

    def __post_init__(self) -> None:
        if len(self.shape) != 3 or any(int(n) < 1 for n in self.shape):
            raise ValueError("shape must be three positive integers")
        if len(self.cell_size) != 3:
            raise ValueError("cell_size must have three entries")
        for d in self.cell_size:
            check_positive(d, "cell size")

    @property
    def n_cells(self) -> int:
        nx, ny, nz = self.shape
        return int(nx) * int(ny) * int(nz)

    @property
    def cell_volume(self) -> float:
        dx, dy, dz = self.cell_size
        return dx * dy * dz

    @property
    def extent(self) -> Tuple[float, float, float]:
        """Physical box size (Lx, Ly, Lz) in metres."""
        return tuple(n * d for n, d in zip(self.shape, self.cell_size))

    def courant_time_step(self, safety: float = 0.995) -> float:
        """Largest stable FDTD time step times ``safety``."""
        return safety * constants.courant_limit(*self.cell_size)


class YeeGrid:
    """Container of the field arrays on a :class:`GridConfig`."""

    _FIELDS = ("Ex", "Ey", "Ez", "Bx", "By", "Bz", "Jx", "Jy", "Jz", "rho")

    def __init__(self, config: GridConfig) -> None:
        self.config = config
        shape = tuple(int(n) for n in config.shape)
        for name in self._FIELDS:
            setattr(self, name, np.zeros(shape, dtype=np.float64))

    # -- convenience views ------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, int, int]:
        return tuple(self.config.shape)

    @property
    def E(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        return self.Ex, self.Ey, self.Ez

    @property
    def B(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        return self.Bx, self.By, self.Bz

    @property
    def J(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        return self.Jx, self.Jy, self.Jz

    def clear_currents(self) -> None:
        """Zero the current density (start of every deposition phase)."""
        self.Jx.fill(0.0)
        self.Jy.fill(0.0)
        self.Jz.fill(0.0)

    def clear_charge(self) -> None:
        self.rho.fill(0.0)

    # -- diagnostics ------------------------------------------------------- #
    def electric_energy(self) -> float:
        """Total electric field energy ``(eps0/2) ∫ E² dV`` in joules."""
        dv = self.config.cell_volume
        total = float(np.sum(self.Ex ** 2) + np.sum(self.Ey ** 2) + np.sum(self.Ez ** 2))
        return 0.5 * constants.EPSILON_0 * total * dv

    def magnetic_energy(self) -> float:
        """Total magnetic field energy ``(1/(2 mu0)) ∫ B² dV`` in joules."""
        dv = self.config.cell_volume
        total = float(np.sum(self.Bx ** 2) + np.sum(self.By ** 2) + np.sum(self.Bz ** 2))
        return 0.5 / constants.MU_0 * total * dv

    def field_energy(self) -> float:
        """Total electromagnetic field energy in joules."""
        return self.electric_energy() + self.magnetic_energy()

    def divergence_b(self) -> np.ndarray:
        """Discrete ∇·B at cell centres; stays at round-off for the Yee scheme.

        Forward differences are the natural divergence for the B staggering
        (Bx at ``(i, j+1/2, k+1/2)`` etc.), making ``div(curl E) = 0`` an
        exact discrete identity.
        """
        dx, dy, dz = self.config.cell_size
        div = ((np.roll(self.Bx, -1, axis=0) - self.Bx) / dx
               + (np.roll(self.By, -1, axis=1) - self.By) / dy
               + (np.roll(self.Bz, -1, axis=2) - self.Bz) / dz)
        return div

    def divergence_j(self) -> np.ndarray:
        """Discrete ∇·J at cell nodes, matching the Esirkepov deposition stencil."""
        dx, dy, dz = self.config.cell_size
        return ((self.Jx - np.roll(self.Jx, 1, axis=0)) / dx
                + (self.Jy - np.roll(self.Jy, 1, axis=1)) / dy
                + (self.Jz - np.roll(self.Jz, 1, axis=2)) / dz)

    def component(self, name: str) -> np.ndarray:
        """Return a field component array by name (``"Ex"`` ... ``"rho"``)."""
        if name not in self._FIELDS:
            raise KeyError(f"unknown field component {name!r}")
        return getattr(self, name)

    def stagger(self, name: str) -> Tuple[float, float, float]:
        """Return the stagger offset of a component in cell fractions."""
        return STAGGER[name]
