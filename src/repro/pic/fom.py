"""Figure-of-merit (FOM) accounting.

The paper's Fig. 4 reports PIConGPU's FOM, the weighted sum of the total
number of particle updates per second (90 %) and the number of cell updates
per second (10 %), for weak-scaling runs from 24 GPUs to 36 864 GPUs on
Frontier.  This module provides the same metric for our simulator and for
the analytic machine model in :mod:`repro.perfmodel.fom`.
"""

from __future__ import annotations

from dataclasses import dataclass

#: The FOM weights used in the paper / the Frontier acceptance benchmarks.
PARTICLE_WEIGHT = 0.9
CELL_WEIGHT = 0.1


@dataclass(frozen=True)
class FigureOfMerit:
    """Result of a FOM measurement.

    Attributes
    ----------
    particle_updates_per_second:
        Macro-particle updates per wall-clock second.
    cell_updates_per_second:
        Grid-cell updates per wall-clock second.
    value:
        The weighted FOM ``0.9 * particle + 0.1 * cell`` (updates/s).
    """

    particle_updates_per_second: float
    cell_updates_per_second: float

    @property
    def value(self) -> float:
        return (PARTICLE_WEIGHT * self.particle_updates_per_second
                + CELL_WEIGHT * self.cell_updates_per_second)

    @property
    def tera_updates_per_second(self) -> float:
        """FOM in TeraUpdates/s, the unit used in Fig. 4."""
        return self.value / 1e12


def figure_of_merit(n_particles: int, n_cells: int, n_steps: int,
                    wall_time: float) -> FigureOfMerit:
    """Compute the FOM of a run.

    Parameters
    ----------
    n_particles:
        Total number of macro-particles updated each step.
    n_cells:
        Total number of grid cells updated each step.
    n_steps:
        Number of time steps covered by ``wall_time``.
    wall_time:
        Elapsed wall-clock time in seconds.
    """
    if wall_time <= 0:
        raise ValueError("wall_time must be positive")
    if n_steps <= 0:
        raise ValueError("n_steps must be positive")
    return FigureOfMerit(
        particle_updates_per_second=n_particles * n_steps / wall_time,
        cell_updates_per_second=n_cells * n_steps / wall_time,
    )
