"""Relativistic Boris particle pusher.

Momenta are stored as the dimensionless ``u = gamma * beta``; the standard
Boris rotation is applied in that variable (Birdsall & Langdon / Hockney &
Eastwood form), which conserves energy exactly for a pure magnetic field.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro import constants
from repro.pic.particles import ParticleSpecies


def boris_push(species: ParticleSpecies, e_fields: np.ndarray, b_fields: np.ndarray,
               dt: float) -> None:
    """Advance the momenta of ``species`` by ``dt`` in place.

    Parameters
    ----------
    e_fields, b_fields:
        Fields interpolated to the particle positions, shape ``(N, 3)``,
        in V/m and T.
    dt:
        Time step in seconds.
    """
    if not species.pushed:
        return
    if dt <= 0:
        raise ValueError("dt must be positive")
    e_fields = np.asarray(e_fields, dtype=np.float64)
    b_fields = np.asarray(b_fields, dtype=np.float64)
    if e_fields.shape != species.momenta.shape or b_fields.shape != species.momenta.shape:
        raise ValueError("field arrays must have shape (N, 3)")

    qmdt2 = species.charge * dt / (2.0 * species.mass * constants.SPEED_OF_LIGHT)

    u = species.momenta
    # half electric acceleration
    u_minus = u + qmdt2 * e_fields
    gamma_minus = np.sqrt(1.0 + np.einsum("ij,ij->i", u_minus, u_minus))

    # magnetic rotation
    t_vec = (species.charge * dt / (2.0 * species.mass)) * b_fields / gamma_minus[:, None]
    t_sq = np.einsum("ij,ij->i", t_vec, t_vec)
    s_vec = 2.0 * t_vec / (1.0 + t_sq)[:, None]
    u_prime = u_minus + np.cross(u_minus, t_vec)
    u_plus = u_minus + np.cross(u_prime, s_vec)

    # second half electric acceleration
    species.momenta = u_plus + qmdt2 * e_fields


def advance_positions(species: ParticleSpecies, dt: float,
                      box_extent: Tuple[float, float, float] | None = None
                      ) -> np.ndarray:
    """Advance positions by ``dt`` using the current momenta.

    Returns the *unwrapped* new positions (needed by the Esirkepov
    deposition); if ``box_extent`` is given, the species' stored positions
    are additionally wrapped periodically into the box.
    """
    if dt <= 0:
        raise ValueError("dt must be positive")
    if not species.pushed:
        return species.positions.copy()
    new_positions = species.positions + species.velocities() * dt
    if box_extent is not None:
        extent = np.asarray(box_extent, dtype=np.float64)
        species.positions = np.mod(new_positions, extent)
    else:
        # the sum above already allocated a fresh array — no defensive copy
        species.positions = new_positions
    return new_positions
