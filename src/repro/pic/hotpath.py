"""The PIC hot-path benchmark: fused vs reference kernels, persisted.

Measures steps/second of the full PIC step (gather → push → Esirkepov
deposit → field solve) on the bench-tiny KHI problem with both kernel paths,
checks that they stay numerically equivalent, and appends the result to
``BENCH_pic_hotpath.json`` at the repository root so the perf trajectory of
the hot path is tracked across commits (see ``docs/performance.md``).

Run it with ``python -m repro.pic.hotpath`` or ``python -m repro.cli
bench-hotpath``; the exit status is non-zero when the fused and reference
paths disagree, which lets CI use the benchmark as an equivalence gate.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.pic.khi import KHIConfig, make_khi_simulation
from repro.pic.simulation import PICSimulation

#: bench-tiny problem: the KHI grid/ppc of the ``bench-tiny`` workflow preset.
BENCH_TINY_GRID = (8, 16, 2)
BENCH_TINY_PPC = 4

#: relative tolerance of the fused-vs-reference field comparison; the paths
#: differ only in floating-point summation order, which stays many orders of
#: magnitude below this over a handful of steps
EQUIVALENCE_RTOL = 1e-9


@dataclass
class HotpathResult:
    """One hot-path measurement: per-kernel rates plus the equivalence check."""

    steps_per_sec: Dict[str, float]
    sections_ms: Dict[str, Dict[str, float]]
    n_steps: int
    n_macro_particles: int
    grid_shape: Tuple[int, int, int]
    equivalence_error: float
    equivalent: bool

    @property
    def speedup(self) -> float:
        return self.steps_per_sec["fused"] / self.steps_per_sec["reference"]

    def params(self) -> Dict[str, object]:
        return {"grid_shape": list(self.grid_shape),
                "particles_per_cell": BENCH_TINY_PPC,
                "n_macro_particles": self.n_macro_particles,
                "n_steps": self.n_steps}

    def metrics(self) -> Dict[str, object]:
        return {"steps_per_sec": self.steps_per_sec,
                "speedup": self.speedup,
                "sections_ms_per_step": self.sections_ms,
                "equivalence_error": self.equivalence_error,
                "equivalent": self.equivalent}


def _bench_config(kernel: str, grid_shape=BENCH_TINY_GRID,
                  seed: int = 11) -> KHIConfig:
    return KHIConfig(grid_shape=tuple(grid_shape),
                     particles_per_cell=BENCH_TINY_PPC, seed=seed,
                     kernel=kernel)


def _time_kernel(kernel: str, n_steps: int, warmup: int,
                 grid_shape) -> Tuple[float, Dict[str, float], PICSimulation]:
    """Steps/sec and per-section ms/step of one kernel path."""
    simulation = make_khi_simulation(_bench_config(kernel, grid_shape))
    for _ in range(warmup):
        simulation.step()
    simulation.timer.reset()
    start = time.perf_counter()
    for _ in range(n_steps):
        simulation.step()
    wall = time.perf_counter() - start
    sections = {name: 1e3 * total / n_steps
                for name, total in simulation.timer.totals().items()}
    return n_steps / wall, sections, simulation


def check_equivalence(n_steps: int = 10,
                      grid_shape=BENCH_TINY_GRID) -> float:
    """Max relative field/position deviation, fused vs reference, after a run.

    Both paths step the *same* initial state; the return value is the worst
    relative difference over all six field components and the particle
    positions of every species.
    """
    sims = {kernel: make_khi_simulation(_bench_config(kernel, grid_shape))
            for kernel in ("fused", "reference")}
    for simulation in sims.values():
        for _ in range(n_steps):
            simulation.step()
    fused, reference = sims["fused"], sims["reference"]
    worst = 0.0
    for name in ("Ex", "Ey", "Ez", "Bx", "By", "Bz"):
        a = fused.grid.component(name)
        b = reference.grid.component(name)
        scale = np.max(np.abs(b)) + 1e-300
        worst = max(worst, float(np.max(np.abs(a - b)) / scale))
    for s_fused, s_ref in zip(fused.species, reference.species):
        scale = np.max(np.abs(s_ref.positions)) + 1e-300
        worst = max(worst, float(np.max(np.abs(s_fused.positions
                                               - s_ref.positions)) / scale))
    return worst


def run_hotpath_benchmark(n_steps: int = 40, warmup: int = 5,
                          equivalence_steps: int = 10, repeats: int = 3,
                          grid_shape=BENCH_TINY_GRID) -> HotpathResult:
    """Measure both kernel paths and their equivalence on bench-tiny.

    The two kernels are measured in ``repeats`` interleaved blocks and the
    best block per kernel is kept: background load hits both paths alike
    instead of whichever happened to run during a busy window, and the
    minimum is the usual robust wall-clock estimator.
    """
    if n_steps < 1:
        raise ValueError("n_steps must be >= 1")
    if warmup < 0:
        raise ValueError("warmup must be >= 0")
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    rates: Dict[str, float] = {}
    sections: Dict[str, Dict[str, float]] = {}
    n_macro = 0
    for _ in range(repeats):
        for kernel in ("reference", "fused"):
            rate, per_section, simulation = _time_kernel(kernel, n_steps,
                                                         warmup, grid_shape)
            if rate > rates.get(kernel, 0.0):
                rates[kernel] = rate
                sections[kernel] = per_section
            n_macro = simulation.n_macro_particles
    error = check_equivalence(equivalence_steps, grid_shape)
    return HotpathResult(steps_per_sec=rates, sections_ms=sections,
                         n_steps=n_steps, n_macro_particles=n_macro,
                         grid_shape=tuple(grid_shape),
                         equivalence_error=error,
                         equivalent=error < EQUIVALENCE_RTOL)


def persist_result(result: HotpathResult, directory: str = ".") -> str:
    """Append ``result`` to ``BENCH_pic_hotpath.json``; returns the path."""
    from repro.utils.benchjson import append_run

    return append_run("pic_hotpath", result.params(), result.metrics(),
                      directory)


def format_result(result: HotpathResult) -> str:
    lines = [
        f"PIC hot path, {'x'.join(str(n) for n in result.grid_shape)} cells, "
        f"{result.n_macro_particles} macro-particles, {result.n_steps} steps:",
    ]
    for kernel in ("reference", "fused"):
        split = ", ".join(f"{name} {ms:.2f}" for name, ms in
                          sorted(result.sections_ms[kernel].items(),
                                 key=lambda kv: -kv[1]) if ms >= 0.01)
        lines.append(f"  {kernel:>9}: {result.steps_per_sec[kernel]:7.1f} "
                     f"steps/s  (ms/step: {split})")
    lines.append(f"  speedup  : {result.speedup:.2f}x")
    status = "OK" if result.equivalent else "FAILED"
    lines.append(f"  fused == reference: {status} "
                 f"(max rel deviation {result.equivalence_error:.2e})")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.pic.hotpath",
        description="benchmark the fused vs reference PIC hot path on the "
                    "bench-tiny problem and append to BENCH_pic_hotpath.json")
    parser.add_argument("--steps", type=int, default=40,
                        help="timed steps per kernel (default 40)")
    parser.add_argument("--warmup", type=int, default=5,
                        help="untimed warmup steps per kernel (default 5)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="interleaved measurement blocks per kernel; the "
                             "best block is recorded (default 3)")
    parser.add_argument("--grid", type=int, nargs=3, default=BENCH_TINY_GRID,
                        metavar=("NX", "NY", "NZ"),
                        help="override the bench-tiny grid cells")
    parser.add_argument("--output-dir", type=str, default=".",
                        help="directory of BENCH_pic_hotpath.json (default .)")
    parser.add_argument("--no-persist", action="store_true",
                        help="measure and print only; do not touch the "
                             "BENCH_*.json history")
    args = parser.parse_args(argv)
    if args.steps < 1:
        print("error: --steps must be >= 1", file=sys.stderr)
        return 2
    if args.warmup < 0:
        print("error: --warmup must be >= 0", file=sys.stderr)
        return 2

    if args.repeats < 1:
        print("error: --repeats must be >= 1", file=sys.stderr)
        return 2
    result = run_hotpath_benchmark(n_steps=args.steps, warmup=args.warmup,
                                   repeats=args.repeats,
                                   grid_shape=tuple(args.grid))
    print(format_result(result))
    if not args.no_persist:
        path = persist_result(result, args.output_dir)
        print(f"  recorded in {path}")
    if not result.equivalent:
        print("error: fused and reference kernels disagree", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
