"""Charge and current deposition (particle → grid scatter).

Two current-deposition schemes are provided:

* :func:`deposit_current_cic` — straightforward CIC scatter of ``q w v``;
  fast and simple but not charge conserving.
* :func:`deposit_current_esirkepov` — the first-order Esirkepov scheme used
  by PIConGPU, which satisfies the discrete continuity equation
  ``(rho^{n+1} - rho^n)/dt + div J = 0`` to machine precision (the property
  tested in ``tests/pic/test_deposition.py`` and benchmarked in
  ``benchmarks/bench_deposition.py``).

Every deposition function dispatches between two numerically equivalent
implementations selected by ``kernel``:

* ``"fused"`` (default) — bincount scatter-adds on raveled linear indices
  with shared CIC plans and a chunked Esirkepov path
  (:mod:`repro.pic.kernels`), the hot path of the simulator,
* ``"reference"`` — the original ``np.add.at`` implementations kept as the
  readable oracle the fused kernels are tested against.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.pic.grid import STAGGER, YeeGrid
from repro.pic.interpolation import _cic_indices_weights
from repro.pic.kernels import (_hat_weights, deposit_charge_cic_fused,
                               deposit_current_cic_fused,
                               deposit_current_esirkepov_fused)


def _check_kernel(kernel: str) -> bool:
    """``True`` for the fused path, ``False`` for reference; raises otherwise."""
    if kernel not in ("fused", "reference"):
        raise ValueError(f"kernel must be 'fused' or 'reference', got {kernel!r}")
    return kernel == "fused"


def _scatter_cic(target: np.ndarray, positions: np.ndarray, values: np.ndarray,
                 cell_size: Tuple[float, float, float],
                 stagger: Tuple[float, float, float]) -> None:
    """Scatter-add per-particle ``values`` with trilinear weights."""
    shape = target.shape
    i0, frac = _cic_indices_weights(positions, cell_size, shape, stagger)
    nx, ny, nz = shape
    wx = (1.0 - frac[:, 0], frac[:, 0])
    wy = (1.0 - frac[:, 1], frac[:, 1])
    wz = (1.0 - frac[:, 2], frac[:, 2])
    ix = (i0[:, 0] % nx, (i0[:, 0] + 1) % nx)
    iy = (i0[:, 1] % ny, (i0[:, 1] + 1) % ny)
    iz = (i0[:, 2] % nz, (i0[:, 2] + 1) % nz)
    for di in (0, 1):
        for dj in (0, 1):
            for dk in (0, 1):
                w = wx[di] * wy[dj] * wz[dk] * values
                np.add.at(target, (ix[di], iy[dj], iz[dk]), w)


def deposit_charge_cic(grid: YeeGrid, positions: np.ndarray, charge: float,
                       weights: np.ndarray, accumulate: bool = True,
                       kernel: str = "fused") -> np.ndarray:
    """Deposit charge density [C/m^3] onto the cell nodes.

    Parameters
    ----------
    accumulate:
        If ``False`` the grid's ``rho`` array is zeroed first.
    kernel:
        ``"fused"`` (default) or ``"reference"``.
    """
    fused = _check_kernel(kernel)
    if not accumulate:
        grid.clear_charge()
    if fused:
        return deposit_charge_cic_fused(grid, positions, charge, weights)
    dv = grid.config.cell_volume
    values = (charge / dv) * np.asarray(weights, dtype=np.float64)
    _scatter_cic(grid.rho, positions, values, grid.config.cell_size, STAGGER["rho"])
    return grid.rho


def deposit_current_cic(grid: YeeGrid, positions: np.ndarray, velocities: np.ndarray,
                        charge: float, weights: np.ndarray,
                        kernel: str = "fused") -> None:
    """Direct CIC deposition of ``J = q w v / dV`` onto the staggered J grid."""
    if _check_kernel(kernel):
        deposit_current_cic_fused(grid, positions, velocities, charge, weights)
        return
    dv = grid.config.cell_volume
    weights = np.asarray(weights, dtype=np.float64)
    cell = grid.config.cell_size
    for axis, name in enumerate(("Jx", "Jy", "Jz")):
        values = (charge / dv) * weights * velocities[:, axis]
        _scatter_cic(grid.component(name), positions, values, cell, STAGGER[name])


def deposit_current_esirkepov(grid: YeeGrid, old_positions: np.ndarray,
                              new_positions: np.ndarray, charge: float,
                              weights: np.ndarray, dt: float,
                              kernel: str = "fused") -> None:
    """Charge-conserving (Esirkepov, first order) current deposition.

    The particle may move at most one cell per time step (guaranteed by the
    CFL limit since ``|v| < c``).  The deposited current satisfies the
    discrete continuity equation with node-centred CIC charge density and
    the staggered current components used by :class:`YeeGrid`.

    Parameters
    ----------
    old_positions, new_positions:
        Positions before and after the position update, shape ``(N, 3)``
        (not yet wrapped by periodic boundaries — pass the raw advanced
        positions so that the displacement is continuous).
    charge, weights, dt:
        Real-particle charge [C], macro-particle weights, time step [s].
    kernel:
        ``"fused"`` (default, chunked bincount scatter) or ``"reference"``.
    """
    if _check_kernel(kernel):
        deposit_current_esirkepov_fused(grid, old_positions, new_positions,
                                        charge, weights, dt)
        return
    old_positions = np.asarray(old_positions, dtype=np.float64)
    new_positions = np.asarray(new_positions, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    if old_positions.shape != new_positions.shape:
        raise ValueError("old and new positions must have the same shape")
    if dt <= 0:
        raise ValueError("dt must be positive")
    n = old_positions.shape[0]
    if n == 0:
        return
    dx, dy, dz = grid.config.cell_size
    nx, ny, nz = grid.shape
    dv = grid.config.cell_volume

    cell = np.array([dx, dy, dz])
    xi0 = old_positions / cell           # (N, 3) in cell units
    xi1 = new_positions / cell
    displacement = np.abs(xi1 - xi0)
    if np.any(displacement >= 1.0):
        raise ValueError("Esirkepov deposition requires particles to move "
                         "less than one cell per step")

    # Local 4-node stencil starting one node below the old cell.
    base = np.floor(xi0).astype(np.int64) - 1   # (N, 3)

    s0x = _hat_weights(xi0[:, 0], base[:, 0])   # (N, 4)
    s0y = _hat_weights(xi0[:, 1], base[:, 1])
    s0z = _hat_weights(xi0[:, 2], base[:, 2])
    s1x = _hat_weights(xi1[:, 0], base[:, 0])
    s1y = _hat_weights(xi1[:, 1], base[:, 1])
    s1z = _hat_weights(xi1[:, 2], base[:, 2])
    dsx, dsy, dsz = s1x - s0x, s1y - s0y, s1z - s0z

    # Esirkepov density decomposition weights, shape (N, 4, 4, 4).
    def w_block(ds_a, s0_b, ds_b, s0_c, ds_c, order):
        """W along axis a with the two transverse axes b, c."""
        term = (s0_b[:, :, None] * s0_c[:, None, :]
                + 0.5 * ds_b[:, :, None] * s0_c[:, None, :]
                + 0.5 * s0_b[:, :, None] * ds_c[:, None, :]
                + (1.0 / 3.0) * ds_b[:, :, None] * ds_c[:, None, :])
        # outer product with ds_a along the correct axis ordering
        w = ds_a[:, :, None, None] * term[:, None, :, :]
        return np.transpose(w, order)

    # W_x indexed (N, i, j, k): ds along x, transverse y (j) and z (k)
    w_x = w_block(dsx, s0y, dsy, s0z, dsz, (0, 1, 2, 3))
    # W_y: ds along y, transverse x (i) and z (k); build as (N, j, i, k) then swap
    w_y = np.transpose(w_block(dsy, s0x, dsx, s0z, dsz, (0, 1, 2, 3)), (0, 2, 1, 3))
    # W_z: ds along z, transverse x (i) and y (j); build as (N, k, i, j) then move k last
    w_z = np.transpose(w_block(dsz, s0x, dsx, s0y, dsy, (0, 1, 2, 3)), (0, 2, 3, 1))

    factor = (charge / dv) * weights / dt       # (N,)
    jx_local = -factor[:, None, None, None] * np.cumsum(w_x, axis=1) * dx
    jy_local = -factor[:, None, None, None] * np.cumsum(w_y, axis=2) * dy
    jz_local = -factor[:, None, None, None] * np.cumsum(w_z, axis=3) * dz

    # Global (periodic) indices of the stencil nodes, shape (N, 4).
    gx = (base[:, 0, None] + np.arange(4)[None, :]) % nx
    gy = (base[:, 1, None] + np.arange(4)[None, :]) % ny
    gz = (base[:, 2, None] + np.arange(4)[None, :]) % nz

    idx_x = np.broadcast_to(gx[:, :, None, None], (n, 4, 4, 4))
    idx_y = np.broadcast_to(gy[:, None, :, None], (n, 4, 4, 4))
    idx_z = np.broadcast_to(gz[:, None, None, :], (n, 4, 4, 4))

    np.add.at(grid.Jx, (idx_x, idx_y, idx_z), jx_local)
    np.add.at(grid.Jy, (idx_x, idx_y, idx_z), jy_local)
    np.add.at(grid.Jz, (idx_x, idx_y, idx_z), jz_local)
