"""Kelvin-Helmholtz instability (KHI) setup.

Section IV-A of the paper: two counter-propagating plasma streams with
normalised velocity ``beta = v/c = 0.2``, particle density ``n0 = 1e25 m^-3``,
9 particles per cell and cubic cells of 93.5 µm; the smallest volume is
192×256×12 cells.  The streams flow along ``x`` and the velocity shear is
along ``y`` (two shear surfaces because of the periodic box, see Fig. 1).

:func:`make_khi_simulation` builds a ready-to-run :class:`PICSimulation`
with electrons following the shear-flow profile and an immobile,
charge-neutralising proton background.  A small sinusoidal velocity
perturbation plus thermal noise seeds the instability.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro import constants
from repro.pic.grid import GridConfig
from repro.pic.particles import ParticleSpecies
from repro.pic.simulation import PICSimulation, SimulationConfig
from repro.utils.rng import RandomState, seeded_rng


@dataclass
class KHIConfig:
    """Physical and numerical parameters of the KHI setup.

    The defaults are scaled-down but keep the paper's dimensionless
    parameters (``beta``, particles per cell).  Use :meth:`paper` for the
    full Section IV-A configuration.
    """

    grid_shape: Tuple[int, int, int] = (16, 32, 4)
    cell_size: float = constants.PAPER_CELL_SIZE
    #: Default density is reduced with respect to the paper's 1e25 m^-3 so
    #: that the *default* (coarse, laptop-sized) grid still resolves the
    #: plasma frequency and skin depth (a few cells per skin depth); the
    #: paper-scale grid resolves them at 1e25 with its much finer effective
    #: resolution.
    density: float = 4.0e20
    beta: float = constants.PAPER_BETA
    particles_per_cell: int = constants.PAPER_PARTICLES_PER_CELL
    thermal_beta: float = 0.005
    perturbation_amplitude: float = 0.01
    perturbation_modes: int = 1
    flow_axis: int = 0          #: streams flow along x
    shear_axis: int = 1         #: velocity changes sign along y
    #: ``True`` uses a static neutralising background (cheaper, but the
    #: electron streams then carry a net current); ``False`` (default, the
    #: physical KHI setup of the paper) loads co-drifting protons so each
    #: stream is current neutral and the instability grows from noise.
    immobile_ions: bool = False
    current_deposition: str = "esirkepov"
    #: hot-path kernel selection: ``"fused"`` (default) or ``"reference"``
    #: (see :mod:`repro.pic.kernels` and ``docs/performance.md``)
    kernel: str = "fused"
    dt: Optional[float] = None
    seed: Optional[int] = 42

    @classmethod
    def paper(cls) -> "KHIConfig":
        """The smallest volume reported in the paper (192×256×12 cells)."""
        return cls(grid_shape=constants.PAPER_SMALLEST_GRID)

    @property
    def grid_config(self) -> GridConfig:
        return GridConfig(shape=self.grid_shape, cell_size=(self.cell_size,) * 3)

    @property
    def n_macro_electrons(self) -> int:
        return int(np.prod(self.grid_shape)) * self.particles_per_cell

    @property
    def macro_weight(self) -> float:
        """Real electrons represented by one macro-particle."""
        cell_volume = self.cell_size ** 3
        return self.density * cell_volume / self.particles_per_cell

    @property
    def plasma_frequency(self) -> float:
        return constants.plasma_frequency(self.density)

    @property
    def skin_depth(self) -> float:
        """Collisionless skin depth c / omega_p [m]."""
        return constants.skin_depth(self.density)

    def omega_p_dt(self) -> float:
        """Plasma frequency times the (effective) time step.

        Explicit PIC requires ``omega_p * dt < 2`` for stability; well below
        that for accuracy.  :func:`make_khi_simulation` warns when the
        configuration violates this.
        """
        dt = self.dt if self.dt is not None else self.grid_config.courant_time_step()
        return self.plasma_frequency * dt


def _shear_velocity_profile(y: np.ndarray, extent_y: float, beta: float) -> np.ndarray:
    """Counter-propagating flow: +beta in the middle half of the box, -beta outside.

    With periodic boundaries this creates two shear surfaces at y = Ly/4 and
    y = 3 Ly/4 (the geometry sketched in Fig. 1).
    """
    inside = (y > 0.25 * extent_y) & (y < 0.75 * extent_y)
    return np.where(inside, beta, -beta)


def make_khi_simulation(config: KHIConfig | None = None,
                        rng: RandomState = None) -> PICSimulation:
    """Create a :class:`PICSimulation` initialised with the KHI configuration."""
    config = config or KHIConfig()
    if config.omega_p_dt() > 2.0:
        import warnings
        warnings.warn(
            f"omega_p * dt = {config.omega_p_dt():.2f} > 2: the explicit PIC "
            "scheme is unstable for this density/time-step combination; "
            "reduce the density, the cell size or the time step",
            RuntimeWarning, stacklevel=2)
    rng = seeded_rng(config.seed if rng is None else rng)
    grid_config = config.grid_config
    extent = grid_config.extent

    n_macro = config.n_macro_electrons
    # Uniform particle loading with per-cell stratification along the shear axis
    # keeps density noise low without costing extra memory.
    positions = rng.uniform(0.0, 1.0, size=(n_macro, 3)) * np.asarray(extent)

    beta_flow = _shear_velocity_profile(positions[:, config.shear_axis],
                                        extent[config.shear_axis], config.beta)
    # seed perturbation: small sinusoidal transverse velocity along the flow axis
    k = 2.0 * np.pi * config.perturbation_modes / extent[config.flow_axis]
    perturbation = config.perturbation_amplitude * config.beta * np.sin(
        k * positions[:, config.flow_axis])

    beta_vec = np.zeros((n_macro, 3))
    beta_vec[:, config.flow_axis] = beta_flow
    beta_vec[:, config.shear_axis] = perturbation
    # thermal spread
    beta_vec += rng.normal(0.0, config.thermal_beta, size=(n_macro, 3))
    speed = np.linalg.norm(beta_vec, axis=1)
    np.clip(speed, None, 0.99, out=speed)
    gamma = 1.0 / np.sqrt(1.0 - speed ** 2)
    momenta = beta_vec * gamma[:, None]

    weights = np.full(n_macro, config.macro_weight)
    electrons = ParticleSpecies.electrons(positions, momenta, weights)

    sim_config = SimulationConfig(grid=grid_config, dt=config.dt,
                                  current_deposition=config.current_deposition,
                                  kernel=config.kernel)
    simulation = PICSimulation(sim_config, species=[electrons])

    if config.immobile_ions:
        # Charge-neutralising background at the same positions: with equal
        # weights the net charge density starts at exactly zero everywhere.
        ions = ParticleSpecies.protons(positions.copy(), np.zeros((n_macro, 3)),
                                       weights.copy(), pushed=False)
        simulation.add_species(ions)
    else:
        # Co-drifting protons: each stream is both charge and current
        # neutral, so fields start at noise level and the shear-driven
        # instability can grow out of it (the setup of Fig. 1).
        ion_beta = np.zeros((n_macro, 3))
        ion_beta[:, config.flow_axis] = beta_flow
        ion_speed = np.abs(beta_flow)
        ion_gamma = 1.0 / np.sqrt(1.0 - ion_speed ** 2)
        ion_momenta = ion_beta * ion_gamma[:, None]
        ions = ParticleSpecies.protons(positions.copy(), ion_momenta,
                                       weights.copy(), pushed=True)
        simulation.add_species(ions)

    simulation.initialize_fields_from_charge()
    return simulation


def growth_rate_estimate(config: KHIConfig) -> float:
    """Analytic order-of-magnitude estimate of the ESKHI growth rate [1/s].

    For the cold, symmetric electron-scale KHI the fastest growing mode has
    a growth rate of order ``Gamma ~ (beta / sqrt(8)) * omega_p / gamma``
    (Grismayer et al. 2013 scaling).  This is used only to pick sensible run
    lengths for examples and tests, not as a validation target.
    """
    gamma0 = constants.lorentz_gamma(config.beta)
    return config.beta / np.sqrt(8.0) * config.plasma_frequency / gamma0
