"""Wall-clock timing helpers.

The streaming and scaling studies in the paper are throughput measurements;
this module provides a small, dependency-free timer abstraction that can also
be driven by a *simulated* clock so that performance-model benchmarks produce
deterministic results (see :mod:`repro.perfmodel`).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List


class WallClock:
    """Monotonic clock that can be replaced by a virtual clock in tests."""

    def now(self) -> float:
        return time.perf_counter()


class VirtualClock(WallClock):
    """A manually advanced clock used by the performance models."""

    def __init__(self, start: float = 0.0) -> None:
        self._t = float(start)

    def now(self) -> float:
        return self._t

    def advance(self, dt: float) -> float:
        """Advance the clock by ``dt`` seconds and return the new time."""
        if dt < 0:
            raise ValueError("cannot advance a clock backwards")
        self._t += dt
        return self._t


@dataclass
class Timer:
    """Accumulating named timer.

    Examples
    --------
    >>> timer = Timer()
    >>> with timer.section("push"):
    ...     pass
    >>> "push" in timer.totals()
    True
    """

    clock: WallClock = field(default_factory=WallClock)
    _totals: Dict[str, float] = field(default_factory=dict)
    _counts: Dict[str, int] = field(default_factory=dict)

    @contextmanager
    def section(self, name: str) -> Iterator[None]:
        start = self.clock.now()
        try:
            yield
        finally:
            elapsed = self.clock.now() - start
            self._totals[name] = self._totals.get(name, 0.0) + elapsed
            self._counts[name] = self._counts.get(name, 0) + 1

    def add(self, name: str, seconds: float) -> None:
        """Record ``seconds`` against section ``name`` without timing."""
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        self._totals[name] = self._totals.get(name, 0.0) + seconds
        self._counts[name] = self._counts.get(name, 0) + 1

    def totals(self) -> Dict[str, float]:
        return dict(self._totals)

    def counts(self) -> Dict[str, int]:
        return dict(self._counts)

    def mean(self, name: str) -> float:
        if name not in self._totals or self._counts.get(name, 0) == 0:
            raise KeyError(f"no samples recorded for section {name!r}")
        return self._totals[name] / self._counts[name]

    def total(self) -> float:
        return sum(self._totals.values())

    def reset(self) -> None:
        self._totals.clear()
        self._counts.clear()


def timed(fn: Callable, *args, repeat: int = 1, clock: WallClock | None = None,
          **kwargs):
    """Run ``fn`` ``repeat`` times, returning ``(result, per-call seconds)``."""
    if repeat < 1:
        raise ValueError("repeat must be >= 1")
    clock = clock or WallClock()
    times: List[float] = []
    result = None
    for _ in range(repeat):
        start = clock.now()
        result = fn(*args, **kwargs)
        times.append(clock.now() - start)
    return result, times
