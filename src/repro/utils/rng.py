"""Deterministic random-number handling.

Every stochastic component in the library (particle loading, weight
initialisation, experience-replay sampling, data planes with jitter) accepts
an explicit :class:`numpy.random.Generator`.  This module centralises how
those generators are created so that workflows are reproducible end to end
and so that simulated "ranks" receive statistically independent streams.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

#: Type accepted wherever a random source is expected.
RandomState = Union[None, int, np.random.Generator]


def seeded_rng(seed: RandomState = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from a seed-like object.

    Parameters
    ----------
    seed:
        ``None`` (non-deterministic), an integer seed, or an existing
        generator (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: RandomState, count: int) -> List[np.random.Generator]:
    """Create ``count`` independent generators derived from ``seed``.

    Uses :class:`numpy.random.SeedSequence` spawning so the streams are
    statistically independent; used to give each simulated rank / domain its
    own stream (mirroring per-GPU RNG state in PIConGPU).
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if isinstance(seed, np.random.Generator):
        # Derive children deterministically from the generator's own stream,
        # but through a SeedSequence: seeding each child with a raw
        # ``integers(0, 2**63 - 1)`` draw can hand two children the same
        # seed (birthday collisions), silently correlating their streams.
        # SeedSequence children differ by spawn key even for equal entropy.
        entropy = [int(value) for value in seed.integers(0, 2**63 - 1, size=4)]
        seq = np.random.SeedSequence(entropy=entropy)
        return [np.random.default_rng(child) for child in seq.spawn(count)]
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]


def derive_seed(seed: Optional[int], *salt: int) -> int:
    """Derive a new integer seed from a base seed and integer salt values."""
    base = 0 if seed is None else int(seed)
    mixed = np.random.SeedSequence([base, *[int(s) for s in salt]])
    return int(mixed.generate_state(1, dtype=np.uint64)[0] % (2**63 - 1))
