"""Shared utilities: deterministic RNG, timers, validation, serialisation,
persisted benchmark histories, logging setup."""

from repro.utils.benchjson import append_run, bench_path, latest_run, load_history
from repro.utils.logging import get_logger, setup_logging
from repro.utils.rng import RandomState, seeded_rng, spawn_rngs
from repro.utils.serialization import jsonable
from repro.utils.timer import Timer, WallClock, timed
from repro.utils.validation import (
    check_array,
    check_positive,
    check_probability,
    check_shape,
)

__all__ = [
    "append_run",
    "bench_path",
    "latest_run",
    "load_history",
    "get_logger",
    "setup_logging",
    "RandomState",
    "seeded_rng",
    "spawn_rngs",
    "jsonable",
    "Timer",
    "WallClock",
    "timed",
    "check_array",
    "check_positive",
    "check_probability",
    "check_shape",
]
