"""Light-weight argument validation helpers used at public API boundaries."""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np


def check_array(value, name: str, *, dtype=None, ndim: Optional[int] = None,
                allow_empty: bool = True) -> np.ndarray:
    """Coerce ``value`` to an ndarray and validate basic structural facts."""
    arr = np.asarray(value, dtype=dtype)
    if ndim is not None and arr.ndim != ndim:
        raise ValueError(f"{name} must have ndim={ndim}, got {arr.ndim}")
    if not allow_empty and arr.size == 0:
        raise ValueError(f"{name} must not be empty")
    return arr


def check_shape(arr: np.ndarray, shape: Sequence[Optional[int]], name: str) -> None:
    """Validate an array shape against a template with ``None`` wildcards."""
    if len(arr.shape) != len(shape):
        raise ValueError(
            f"{name} must have {len(shape)} dimensions, got shape {arr.shape}")
    for axis, (got, want) in enumerate(zip(arr.shape, shape)):
        if want is not None and got != want:
            raise ValueError(
                f"{name} has size {got} along axis {axis}, expected {want}")


def check_positive(value: float, name: str, *, strict: bool = True) -> float:
    """Validate a (strictly) positive scalar."""
    value = float(value)
    if strict and not value > 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    if not strict and value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def check_probability(value: float, name: str) -> float:
    """Validate a scalar in the closed interval [0, 1]."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value}")
    return value


def check_in(value, options: Iterable, name: str):
    """Validate membership of ``value`` in ``options``."""
    options = tuple(options)
    if value not in options:
        raise ValueError(f"{name} must be one of {options}, got {value!r}")
    return value


def broadcast_shapes(*shapes: Tuple[int, ...]) -> Tuple[int, ...]:
    """Return the NumPy broadcast shape of the given shapes (raises if incompatible)."""
    return np.broadcast_shapes(*shapes)
