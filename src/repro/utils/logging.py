"""One-call logging setup shared by the CLI, service and worker pool.

Every module in the repo logs through ``logging.getLogger(__name__)``,
which lands under the ``repro`` logger hierarchy; :func:`setup_logging`
configures that root once — one stderr handler, one format — so the
service access log, worker-pool warnings and campaign progress all come
out uniformly.  The CLI's global ``--log-level`` flag feeds straight into
it.  Calling it again (tests, repeated ``main()`` invocations) updates
the level without stacking duplicate handlers.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional, Union

#: The shared log line format.
LOG_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"

#: Attribute marking the handler installed by :func:`setup_logging`.
_MARKER = "_repro_logging_handler"


def resolve_level(level: Optional[Union[str, int]]) -> int:
    """A logging level from a name, number or ``None`` (default WARNING).

    Raises:
        ValueError: on an unknown level name.
    """
    if level is None:
        return logging.WARNING
    if isinstance(level, int):
        return level
    resolved = logging.getLevelName(str(level).strip().upper())
    if not isinstance(resolved, int):
        raise ValueError(f"unknown log level: {level!r}")
    return resolved


def setup_logging(level: Optional[Union[str, int]] = None) -> logging.Logger:
    """Configure the ``repro`` logger hierarchy (idempotent).

    Installs a single stderr handler with :data:`LOG_FORMAT` on the
    ``repro`` logger and sets its level; repeated calls only adjust the
    level.  Propagation stays on so pytest's ``caplog`` and embedding
    applications still observe the records.

    Args:
        level: a level name (``"debug"``), numeric level, or ``None``
            for the WARNING default.

    Returns:
        The configured ``repro`` logger.
    """
    logger = logging.getLogger("repro")
    logger.setLevel(resolve_level(level))
    if not any(getattr(handler, _MARKER, False)
               for handler in logger.handlers):
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(logging.Formatter(LOG_FORMAT))
        setattr(handler, _MARKER, True)
        logger.addHandler(handler)
    return logger


def get_logger(name: str) -> logging.Logger:
    """A module-level logger under the shared ``repro`` hierarchy.

    Args:
        name: the module's ``__name__`` (prefixed with ``repro.`` when it
            is not already inside the package).
    """
    if name != "repro" and not name.startswith("repro."):
        name = f"repro.{name}"
    return logging.getLogger(name)
