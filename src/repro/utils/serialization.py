"""JSON serialisation helpers shared by the CLI and the streaming engine."""

from __future__ import annotations

import math

import numpy as np


def jsonable(value, *, strict: bool = True):
    """Coerce numpy scalars/arrays (and nested containers) to JSON types.

    With ``strict`` (the default), non-finite floats become ``None``:
    ``json.dumps`` would otherwise emit bare ``NaN``/``Infinity`` tokens,
    which are not valid strict JSON and break non-Python consumers of the
    machine-readable dumps.  ``strict=False`` keeps non-finite floats for
    Python-internal round-trips that want nan to stay nan (the file-based
    dataplane's step metadata).
    """
    if isinstance(value, np.generic):
        value = value.item()
    if strict and isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, np.ndarray):
        # tolist() of a 0-d array is a bare scalar, of an n-d array a
        # (nested) list — recursion handles both
        return jsonable(value.tolist(), strict=strict)
    if isinstance(value, dict):
        return {str(key): jsonable(item, strict=strict)
                for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(item, strict=strict) for item in value]
    return value
