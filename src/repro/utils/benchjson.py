"""Persisted benchmark histories (``BENCH_<topic>.json``).

A repo-level performance trajectory: every benchmark run appends one record
(timestamp, git revision, parameters, metrics) to ``BENCH_<topic>.json`` at
the repository root, so regressions and improvements are visible across
commits without an external dashboard.

File schema (version 1)::

    {
      "schema_version": 1,
      "topic": "pic_hotpath",
      "runs": [
        {
          "timestamp": "2026-08-08T12:34:56+00:00",
          "git_revision": "3b80baa",
          "params": {...},
          "metrics": {...}
        },
        ...
      ]
    }

Writes are atomic (temp file + ``os.replace``) so a crashed benchmark never
corrupts the history; unknown or corrupt files fail loudly rather than being
silently overwritten.
"""

from __future__ import annotations

import json
import os
import subprocess
from datetime import datetime, timezone
from typing import Dict, List, Optional

from repro.utils.serialization import jsonable

SCHEMA_VERSION = 1


def bench_path(topic: str, directory: str = ".") -> str:
    """The ``BENCH_<topic>.json`` path of ``topic`` under ``directory``."""
    if not topic or any(c in topic for c in "/\\ "):
        raise ValueError(f"invalid benchmark topic {topic!r}")
    return os.path.join(directory, f"BENCH_{topic}.json")


def git_revision(directory: str = ".") -> Optional[str]:
    """The short git revision of ``directory``, or ``None`` outside a repo."""
    try:
        out = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                             cwd=directory or ".", capture_output=True,
                             text=True, timeout=10)
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


def make_record(params: Dict[str, object], metrics: Dict[str, object],
                directory: str = ".") -> Dict[str, object]:
    """One run record: UTC timestamp + git revision + params + metrics."""
    return {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "git_revision": git_revision(directory),
        "params": jsonable(params),
        "metrics": jsonable(metrics),
    }


def load_history(path: str) -> Dict[str, object]:
    """Load a benchmark history file, validating the schema."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict) or "runs" not in data:
        raise ValueError(f"{path} is not a benchmark history file")
    version = data.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(f"{path} has unsupported schema version {version!r} "
                         f"(expected {SCHEMA_VERSION})")
    if not isinstance(data["runs"], list):
        raise ValueError(f"{path} holds a non-list 'runs' entry")
    return data


def append_run(topic: str, params: Dict[str, object],
               metrics: Dict[str, object], directory: str = ".") -> str:
    """Append one run record to ``BENCH_<topic>.json``; returns the path.

    Creates the file (with the schema header) on first use.  The write is
    atomic: the updated history lands in a temp file first and replaces the
    original in one ``os.replace``.
    """
    path = bench_path(topic, directory)
    os.makedirs(directory or ".", exist_ok=True)
    if os.path.exists(path):
        history = load_history(path)
        if history["topic"] != topic:
            raise ValueError(f"{path} records topic {history['topic']!r}, "
                             f"refusing to append topic {topic!r}")
    else:
        history = {"schema_version": SCHEMA_VERSION, "topic": topic, "runs": []}
    history["runs"].append(make_record(params, metrics, directory))
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(history, handle, indent=2)
        handle.write("\n")
    os.replace(tmp, path)
    return path


def latest_run(topic: str, directory: str = ".") -> Optional[Dict[str, object]]:
    """The most recent record of ``topic``, or ``None`` without history."""
    path = bench_path(topic, directory)
    if not os.path.exists(path):
        return None
    runs: List[Dict[str, object]] = load_history(path)["runs"]
    return runs[-1] if runs else None
