"""Command-line interface.

``python -m repro.cli <command>`` (or the ``artificial-scientist`` console
script) exposes the main entry points of the reproduction:

* ``run``              — run the coupled in-transit workflow
  (``--preset``/``--driver``/``--config``/``--monitor`` select the
  workflow configuration, execution strategy and extra consumers;
  ``--json`` emits the machine-readable ``RunResult`` dump),
* ``campaign``         — parameter-sweep / ensemble campaigns over many
  workflow runs (``campaign run|status|report`` locally,
  ``campaign submit|watch --url`` against a running service, see
  :mod:`repro.campaign` and :mod:`repro.service`),
* ``serve``            — the campaign control plane as an HTTP service
  (submit over ``POST /v1/campaigns``, watch runs land live over SSE;
  see ``docs/service.md``),
* ``trace``            — render a campaign's span trees (resolve →
  dispatch → execute → settle with per-phase timings) from the JSONL
  trace written next to its store (see ``docs/observability.md``),
* ``presets``          — list the named workflow presets and drivers,
* ``fom-scan``         — regenerate the Fig. 4 FOM weak-scaling table,
* ``streaming-study``  — regenerate the Fig. 6 streaming-throughput table,
* ``ddp-scan``         — regenerate the Fig. 8 training weak-scaling table,
* ``khi-info``         — print the Section IV-A KHI setup constants,
* ``placement``        — compare intra- vs inter-node placement (Fig. 3c),
* ``bench-hotpath``    — benchmark the fused vs reference PIC hot path and
  append the result to ``BENCH_pic_hotpath.json`` (see
  ``docs/performance.md``),
* ``bench-campaign``   — benchmark the campaign executors
  (serial/process/workers) on a chunked service-style launch and append
  the result to ``BENCH_campaign_throughput.json``.

``run`` is built on :mod:`repro.workflow`: it assembles a
``WorkflowSession`` from a preset (or a JSON config file) and drives it
with the chosen execution driver.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, Optional, Sequence

from repro.utils.serialization import jsonable as _jsonable


def _run_result_payload(result) -> Dict[str, object]:
    """The machine-readable ``run --json`` dump of one RunResult.

    Raw (may still hold numpy types) — the print site owns the single
    ``_jsonable`` coercion pass, after any extra keys are appended.
    """
    payload = dict(result.summary())
    payload["consumer_summaries"] = result.consumer_summaries
    payload["producer_exception"] = (None if result.producer_exception is None
                                     else str(result.producer_exception))
    payload["consumer_exceptions"] = {name: str(error) for name, error
                                      in result.consumer_exceptions.items()}
    return payload


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="artificial-scientist",
        description="Reproduction of 'The Artificial Scientist: in-transit "
                    "Machine Learning of Plasma Simulations'")
    parser.add_argument("--log-level", type=str, default=None,
                        metavar="LEVEL",
                        help="logging level of every repro module (debug, "
                             "info, warning, error; default warning)")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run the coupled in-transit workflow")
    run.add_argument("--steps", type=int, default=5, help="simulation steps to run")
    run.add_argument("--preset", type=str, default="cli-small",
                     help="named workflow preset (see the 'presets' command)")
    run.add_argument("--config", type=str, default=None,
                     help="JSON WorkflowConfig file (overrides --preset)")
    run.add_argument("--driver", type=str, default=None,
                     help="execution driver: serial (default), threaded or "
                          "pipelined")
    run.add_argument("--n-rep", type=int, default=None,
                     help="override the preset's training iterations per "
                          "streamed step")
    run.add_argument("--grid", type=int, nargs=3, default=None,
                     metavar=("NX", "NY", "NZ"),
                     help="override the preset's KHI grid cells")
    run.add_argument("--particles-per-cell", type=int, default=None)
    run.add_argument("--seed", type=int, default=None,
                     help="override the preset's seed")
    run.add_argument("--threaded", action="store_true",
                     help="deprecated alias for --driver threaded")
    run.add_argument("--monitor", action="store_true",
                     help="attach the histogram-monitor consumer to the "
                          "stream alongside the MLapp")
    run.add_argument("--evaluate", action="store_true",
                     help="print the Fig. 9-style inversion report after the run")
    run.add_argument("--checkpoint", type=str, default=None,
                     help="directory to write a model/buffer checkpoint to")
    run.add_argument("--json", action="store_true",
                     help="print the machine-readable RunResult dump instead "
                          "of the human-readable summary")

    campaign = sub.add_parser(
        "campaign", help="parameter-sweep / ensemble campaigns over workflow runs")
    campaign_sub = campaign.add_subparsers(dest="campaign_command", required=True)

    def add_campaign_selectors(parser: argparse.ArgumentParser) -> None:
        parser.add_argument("--spec", type=str, default=None,
                            help="CampaignSpec JSON file")
        parser.add_argument("--preset", type=str, default=None,
                            help="named campaign preset (e.g. campaign-smoke)")
        parser.add_argument("--store", type=str, default=None,
                            help="JSONL result store path "
                                 "(default: <campaign-name>.campaign.jsonl)")
        parser.add_argument("--json", action="store_true",
                            help="machine-readable JSON output")

    campaign_run = campaign_sub.add_parser(
        "run", help="run (or resume) a campaign; completed runs are skipped")
    add_campaign_selectors(campaign_run)
    campaign_run.add_argument("--executor", type=str, default=None,
                              help="campaign executor: serial (default), "
                                   "thread, process, workers (persistent "
                                   "warm worker pool) or sharded (implied "
                                   "by --shards/--route or a spec with "
                                   "routing)")
    campaign_run.add_argument("--shards", type=int, default=None,
                              help="shard count of the sharded executor "
                                   "(implies --executor sharded)")
    campaign_run.add_argument("--route", type=str, default=None,
                              help="workload routing policy of the sharded "
                                   "executor: hash (default), round-robin "
                                   "or explicit (implies --executor sharded)")
    campaign_run.add_argument("--inner-executor", dest="inner_executor",
                              type=str, default=None,
                              help="executor each shard delegates to "
                                   "(default serial; implies --executor "
                                   "sharded)")
    campaign_run.add_argument("--cache-dir", type=str, default=None,
                              help="content-addressed result cache: pending "
                                   "runs already cached (even by another "
                                   "campaign) are recorded without being "
                                   "executed; new completed runs are added")
    campaign_run.add_argument("--max-workers", type=int, default=None,
                              help="bounded concurrency of the pool executors "
                                   "(per shard under --executor sharded)")
    campaign_run.add_argument("--timeout", type=float, default=None,
                              help="per-run wall-clock budget in seconds, "
                                   "covering retries (cooperative: checked "
                                   "after each attempt finishes, never kills "
                                   "an in-flight run; a successful over-"
                                   "budget run keeps its result)")
    campaign_run.add_argument("--retries", type=int, default=0,
                              help="retries per failing run")
    campaign_run.add_argument("--max-runs", type=int, default=None,
                              help="execute at most this many pending runs")

    add_campaign_selectors(campaign_sub.add_parser(
        "status", help="pending/completed/failed counts of a campaign"))
    add_campaign_selectors(campaign_sub.add_parser(
        "report", help="aggregate the campaign's recorded runs"))

    submit = campaign_sub.add_parser(
        "submit", help="submit a campaign to a running service "
                       "(see the 'serve' command)")
    submit.add_argument("--url", type=str, required=True,
                        help="service base URL, e.g. http://127.0.0.1:8765")
    submit.add_argument("--spec", type=str, default=None,
                        help="CampaignSpec JSON file")
    submit.add_argument("--preset", type=str, default=None,
                        help="named campaign preset (e.g. campaign-smoke)")
    submit.add_argument("--executor", type=str, default=None,
                        help="campaign executor the service should use")
    submit.add_argument("--max-workers", type=int, default=None)
    submit.add_argument("--retries", type=int, default=None)
    submit.add_argument("--timeout", type=float, default=None,
                        help="per-run wall-clock budget in seconds")
    submit.add_argument("--cache-dir", type=str, default=None,
                        help="server-side result-cache directory")
    submit.add_argument("--json", action="store_true",
                        help="print the submission document as JSON")

    watch = campaign_sub.add_parser(
        "watch", help="stream a campaign's runs live over SSE")
    watch.add_argument("campaign_id", type=str,
                       help="the campaign id returned by 'campaign submit'")
    watch.add_argument("--url", type=str, required=True,
                       help="service base URL, e.g. http://127.0.0.1:8765")
    watch.add_argument("--json", action="store_true",
                       help="print one JSON line per SSE event")

    sub.add_parser("presets", help="list the workflow presets and drivers")

    serve = sub.add_parser(
        "serve", help="run the campaign control plane as an HTTP service")
    serve.add_argument("--host", type=str, default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8765,
                       help="bind port (default 8765; 0 picks a free port)")
    serve.add_argument("--store-dir", type=str, default="campaign-service",
                       help="directory of the campaign stores + specs — the "
                            "service's only persistent state "
                            "(default campaign-service/)")

    trace = sub.add_parser(
        "trace", help="render a campaign's span trees from its JSONL trace")
    trace.add_argument("campaign", type=str, nargs="?", default=None,
                       help="a campaign id/name, or a path to a trace or "
                            "store file (default: every trace in "
                            "--store-dir)")
    trace.add_argument("--store-dir", type=str, default="campaign-service",
                       help="service store directory searched for "
                            "<campaign>.trace.jsonl (default "
                            "campaign-service/)")
    trace.add_argument("--store", type=str, default=None,
                       help="campaign store path; its sibling trace file "
                            "is rendered")
    trace.add_argument("--run", type=str, default=None,
                       help="only traces touching this run id (prefix "
                            "match)")
    trace.add_argument("--json", action="store_true",
                       help="print one JSON line per span instead of the "
                            "tree")

    sub.add_parser("fom-scan", help="Fig. 4: FOM weak scaling (Frontier vs Summit)")

    streaming = sub.add_parser("streaming-study",
                               help="Fig. 6: full-scale streaming throughput study")
    streaming.add_argument("--bytes-per-node", type=float, default=5.86e9)

    ddp = sub.add_parser("ddp-scan", help="Fig. 8: in-transit training weak scaling")
    ddp.add_argument("--nodes", type=int, nargs="+", default=(8, 24, 48, 96))

    sub.add_parser("khi-info", help="Section IV-A KHI setup constants")

    placement = sub.add_parser("placement", help="Fig. 3c: placement comparison")
    placement.add_argument("--nodes", type=int, default=96)

    hotpath = sub.add_parser(
        "bench-hotpath",
        help="benchmark the fused vs reference PIC hot path "
             "(appends to BENCH_pic_hotpath.json)")
    hotpath.add_argument("--steps", type=int, default=40,
                         help="timed steps per kernel (default 40)")
    hotpath.add_argument("--warmup", type=int, default=5,
                         help="untimed warmup steps per kernel (default 5)")
    hotpath.add_argument("--repeats", type=int, default=3,
                         help="interleaved measurement blocks per kernel; "
                              "the best block is recorded (default 3)")
    hotpath.add_argument("--grid", type=int, nargs=3, default=None,
                         metavar=("NX", "NY", "NZ"),
                         help="override the bench-tiny grid cells")
    hotpath.add_argument("--output-dir", type=str, default=".",
                         help="directory of BENCH_pic_hotpath.json (default .)")
    hotpath.add_argument("--no-persist", action="store_true",
                         help="measure and print only; do not touch the "
                              "BENCH_*.json history")

    bench_campaign = sub.add_parser(
        "bench-campaign",
        help="benchmark the campaign executors (serial/process/workers) "
             "on a chunked service-style launch "
             "(appends to BENCH_campaign_throughput.json)")
    bench_campaign.add_argument("--preset", type=str, default=None,
                                help="campaign preset to drive "
                                     "(default campaign-smoke)")
    bench_campaign.add_argument("--repeats", type=int, default=3,
                                help="interleaved measurement blocks per "
                                     "executor; the best block is recorded "
                                     "(default 3)")
    bench_campaign.add_argument("--repetitions", type=int, default=None,
                                help="override the preset's ensemble "
                                     "repetitions (scales the run count)")
    bench_campaign.add_argument("--max-workers", type=int, default=None,
                                help="pool width (default: machine-derived)")
    bench_campaign.add_argument("--start-method", type=str, default=None,
                                choices=("spawn", "fork", "forkserver"),
                                help="worker start method (default spawn)")
    bench_campaign.add_argument("--output-dir", type=str, default=".",
                                help="directory of "
                                     "BENCH_campaign_throughput.json "
                                     "(default .)")
    bench_campaign.add_argument("--no-persist", action="store_true",
                                help="measure and print only; do not touch "
                                     "the BENCH_*.json history")
    return parser


# --------------------------------------------------------------------------- #
def _run_config(args: argparse.Namespace):
    """Resolve the run command's workflow configuration from its flags."""
    from dataclasses import replace

    from repro.core.config import WorkflowConfig
    from repro.workflow import get_preset

    if args.config:
        config = WorkflowConfig.from_file(args.config)
    else:
        config = get_preset(args.preset)
    khi = config.khi
    if args.grid is not None:
        khi = replace(khi, grid_shape=tuple(args.grid))
    if args.particles_per_cell is not None:
        khi = replace(khi, particles_per_cell=args.particles_per_cell)
    if args.seed is not None:
        khi = replace(khi, seed=args.seed)
    ml = config.ml
    if args.n_rep is not None:
        ml = replace(ml, n_rep=args.n_rep)
    return replace(config, khi=khi, ml=ml,
                   seed=config.seed if args.seed is None else args.seed)


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.workflow import WorkflowBuilder

    if args.steps < 1:
        print("error: --steps must be >= 1", file=sys.stderr)
        return 2
    if args.threaded and args.driver not in (None, "threaded"):
        print(f"error: --threaded conflicts with --driver {args.driver}; "
              f"--threaded is a deprecated alias for --driver threaded",
              file=sys.stderr)
        return 2
    driver_name = "threaded" if args.threaded else (args.driver or "serial")
    try:
        builder = WorkflowBuilder().config(_run_config(args)).driver(driver_name)
    except (ValueError, OSError) as error:
        # typo'd preset/driver names and broken config files deserve a clean
        # one-line message, not a traceback
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.monitor:
        builder.add_consumer("monitor", kind="histogram-monitor")
    session = builder.build()

    result = session.run(args.steps)
    if result.producer_exception is not None:
        print(f"producer failed: {result.producer_exception}", file=sys.stderr)
    for name, error in result.consumer_exceptions.items():
        print(f"consumer {name!r} failed: {error}", file=sys.stderr)
    if not result.ok:
        if args.json:
            print(json.dumps(_jsonable(_run_result_payload(result)), indent=2))
        return 1

    payload = _run_result_payload(result) if args.json else None
    if not args.json:
        print(f"driver: {result.driver}")
        if result.driver != "serial":
            print(f"max stream queue depth: {result.max_queue_depth}")
        for key, value in result.report.summary().items():
            print(f"{key:>24}: {value}")

    if args.monitor and not args.json:
        monitor = result.consumer_summaries["monitor"]
        print(f"\nmonitor consumer: {monitor['iterations_consumed']} iterations, "
              f"{monitor['samples_consumed']} samples")
        print(f"momentum histogram    : {monitor['momentum_histogram']}")

    if args.evaluate:
        evaluation = session.evaluate()
        if args.json:
            payload["evaluation"] = evaluation.rows()
        else:
            print("\nregion, true peak, predicted peak, histogram L1")
            for row in evaluation.rows():
                print(f"{row['region']:>12}, {row['true_peak']:+.3f}, "
                      f"{row['predicted_peak']:+.3f}, {row['histogram_l1']:.3f}")

    if args.checkpoint:
        from repro.core.checkpoint import save_checkpoint
        info = save_checkpoint(args.checkpoint, session.model,
                               session.mlapp.trainer, step=args.steps)
        if args.json:
            payload["checkpoint"] = {
                "directory": info.directory,
                "training_iterations": info.training_iterations}
        else:
            print(f"\ncheckpoint written to {info.directory} "
                  f"({info.training_iterations} training iterations)")
    if args.json:
        print(json.dumps(_jsonable(payload), indent=2))
    return 0


# --------------------------------------------------------------------------- #
def _campaign_spec(args: argparse.Namespace):
    """Resolve the campaign spec from ``--spec`` / ``--preset``."""
    from repro.campaign import CampaignSpec, get_campaign_preset

    if args.spec and args.preset:
        raise ValueError("pass either --spec or --preset, not both")
    if args.spec:
        return CampaignSpec.from_file(args.spec)
    if args.preset:
        return get_campaign_preset(args.preset)
    raise ValueError("a campaign needs --spec FILE or --preset NAME "
                     "(e.g. --preset campaign-smoke)")


def _campaign_store(args: argparse.Namespace, spec):
    from repro.campaign import CampaignStore

    return CampaignStore(args.store or f"{spec.name}.campaign.jsonl")


def _campaign_executor(args: argparse.Namespace, spec):
    """Build the run executor from the spec's routing hints and the flags.

    Explicit flags win over the spec; sharding flags (or a spec that
    carries routing) imply ``--executor sharded`` unless another executor
    was named explicitly — in which case stray sharding flags are an error
    rather than silently ignored.
    """
    from repro.campaign import get_executor

    routing = dict(spec.routing)
    if args.shards is not None:
        routing["shards"] = args.shards
    if args.route is not None:
        routing["route"] = args.route
    if args.inner_executor is not None:
        routing["inner"] = args.inner_executor
    flags_used = any(value is not None
                     for value in (args.shards, args.route, args.inner_executor))
    name = args.executor or ("sharded" if routing else "serial")
    kwargs = dict(max_workers=args.max_workers, timeout=args.timeout,
                  retries=args.retries)
    if name == "sharded":
        kwargs.update(shards=routing.get("shards", 2),
                      route=routing.get("route", "hash"),
                      inner=routing.get("inner", "serial"),
                      assignments=routing.get("assignments"))
    elif flags_used:
        raise ValueError(f"--shards/--route/--inner-executor configure the "
                         f"sharded executor; drop --executor {name} or use "
                         f"--executor sharded")
    return get_executor(name, **kwargs)


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    from repro.campaign import ResultCache, run_campaign

    try:
        if args.max_runs is not None and args.max_runs < 0:
            raise ValueError("max_runs must be >= 0")
        spec = _campaign_spec(args)
        store = _campaign_store(args, spec)
        executor = _campaign_executor(args, spec)
        cache_dir = args.cache_dir or spec.cache_dir
        cache = ResultCache(cache_dir) if cache_dir else None
        runs = spec.resolve()
        done_ids = store.completed_run_ids()
    except (ValueError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    def progress(record) -> None:
        if args.json:
            return
        loss = record.summary.get("final_total_loss")
        detail = (f"loss {loss:.4f}" if isinstance(loss, float)
                  else (record.error or ""))
        if record.cached:
            detail = f"(cached) {detail}"
        print(f"  [{record.run_id}] {record.status:>9} "
              f"in {record.elapsed_s:6.2f} s  {detail}")

    if not args.json:
        complete = len({run.run_id for run in runs} & done_ids)
        print(f"campaign {spec.name!r}: {len(runs)} runs resolved "
              f"({complete} already complete), "
              f"executor {executor.name!r}, store {store.path}")
    try:
        outcome = run_campaign(spec, store, executor, max_runs=args.max_runs,
                               on_record=progress, runs=runs,
                               completed_ids=done_ids, cache=cache)
    except (ValueError, OSError) as error:
        # e.g. the store became unwritable mid-campaign, or a router
        # produced an invalid shard for a run (workers' exceptions are
        # captured into records and never surface here)
        print(f"error: {error}", file=sys.stderr)
        return 2
    executor_stats = getattr(executor, "last_stats", None)
    if args.json:
        payload = outcome.summary()
        if cache is not None:
            payload["cache"] = dict(cache.stats(), dir=cache_dir)
        shard_sizes = getattr(executor, "shard_sizes", None)
        if shard_sizes:
            payload["shards"] = shard_sizes
        if executor_stats:
            payload["executor_stats"] = executor_stats
        print(json.dumps(_jsonable(payload), indent=2))
    else:
        shard_sizes = getattr(executor, "shard_sizes", None)
        if shard_sizes:
            print("shards: " + ", ".join(f"{name}: {count}" for name, count
                                         in sorted(shard_sizes.items())))
        if executor_stats:
            print("worker pool: " + ", ".join(
                f"{key}: {value}" for key, value
                in sorted(executor_stats.items())))
        if cache is not None:
            attempted = outcome.cache_hits + outcome.executed
            percent = (100.0 * outcome.cache_hits / attempted
                       if attempted else 0.0)
            print(f"cache: {outcome.cache_hits} hit(s) of {attempted} "
                  f"pending ({percent:.0f}%), dir {cache_dir}")
        summary = outcome.summary()
        print(", ".join(f"{key}: {summary[key]}" for key in
                        ("total_runs", "skipped", "cache_hits", "executed",
                         "completed", "failed", "deferred", "done")))
    return 0 if outcome.failed == 0 else 1


def _campaign_records(args: argparse.Namespace):
    """Spec, store and the spec-scoped records (shared by status/report).

    Only this campaign's runs are kept — a shared or stale store may hold
    records of other specs, which must not skew the numbers.
    """
    spec = _campaign_spec(args)
    store = _campaign_store(args, spec)
    runs = spec.resolve()
    run_ids = {run.run_id for run in runs}
    records = [record for record in store.records()
               if record.run_id in run_ids]
    return spec, store, runs, records


def _campaign_telemetry(store_path: str) -> Optional[dict]:
    """Telemetry summary for ``campaign status``, read from the trace file.

    Returns ``None`` when the store has no trace (telemetry disabled or the
    campaign never ran locally); otherwise the trace path plus the executor
    stats recorded on the most recent root "campaign" span.
    """
    from repro.telemetry import read_spans, trace_path_for

    trace_path = trace_path_for(store_path)
    if not os.path.exists(trace_path):
        return None
    roots = [span for span in read_spans(trace_path)
             if span.name == "campaign" and span.parent_id is None]
    telemetry: dict = {"trace": trace_path, "launches": len(roots)}
    if roots:
        latest = max(roots, key=lambda span: span.start_s)
        stats = latest.attrs.get("executor_stats")
        if stats:
            telemetry["executor"] = stats
    return telemetry


def _cmd_campaign_status(args: argparse.Namespace) -> int:
    from repro.campaign import status_document

    try:
        spec, store, runs, records = _campaign_records(args)
    except (ValueError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    # the same serializer the service's GET /v1/campaigns/{id} emits, so
    # local and remote tooling read one status schema
    status = status_document(spec.name, len(runs), records, store=store.path,
                             telemetry=_campaign_telemetry(store.path))
    if args.json:
        print(json.dumps(status, indent=2))
    else:
        for key, value in status.items():
            print(f"{key:>12}: {value}")
    return 0


def _cmd_campaign_report(args: argparse.Namespace) -> int:
    from repro.campaign import aggregate

    try:
        spec, store, _, records = _campaign_records(args)
    except (ValueError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if not records:
        print(f"error: no recorded runs of campaign {spec.name!r} in "
              f"{store.path}; run the campaign first", file=sys.stderr)
        return 2
    report = aggregate(records, campaign=spec.name)
    if args.json:
        print(json.dumps(_jsonable(report.to_dict()), indent=2))
    else:
        print(report.format_text())
    return 0


def _print_event(event, as_json: bool) -> None:
    """Render one SSE event for ``campaign watch`` (text or JSON lines)."""
    if as_json:
        print(json.dumps(_jsonable({"event": event.event, "id": event.id,
                                    "data": event.data})), flush=True)
        return
    data = event.data
    if event.event in ("run", "snapshot"):
        loss = (data.get("summary") or {}).get("final_total_loss")
        detail = (f"loss {loss:.4f}" if isinstance(loss, float)
                  else (data.get("error") or ""))
        if data.get("cached"):
            detail = f"(cached) {detail}"
        print(f"  [{data.get('run_id')}] {event.event:>9} "
              f"{data.get('status', ''):>9}  {detail}", flush=True)
    elif event.event == "dropped":
        print(f"  ! {data.get('dropped')} event(s) dropped (slow consumer); "
              f"re-check campaign status for the full picture", flush=True)
    else:
        parts = [f"{key}: {data[key]}" for key in
                 ("campaign", "state", "total_runs", "completed", "failed",
                  "cached") if key in data]
        if isinstance(data.get("runs_per_sec"), float):
            parts.append(f"runs_per_sec: {data['runs_per_sec']:.2f}")
        print(f"{event.event}: " + ", ".join(parts), flush=True)


def _cmd_campaign_submit(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient, ServiceError

    try:
        spec = _campaign_spec(args)
    except (ValueError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    client = ServiceClient(args.url)
    try:
        document = client.submit(
            spec=spec.to_dict(), executor=args.executor,
            max_workers=args.max_workers, retries=args.retries,
            timeout=args.timeout, cache_dir=args.cache_dir)
    except (ServiceError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(_jsonable(document), indent=2))
    else:
        print(f"campaign {document['campaign']!r} submitted as "
              f"{document['campaign_id']} (state {document['state']}, "
              f"{document['total_runs']} runs, "
              f"{document['completed']} already complete)")
        print(f"watch it: python -m repro.cli campaign watch "
              f"--url {args.url} {document['campaign_id']}")
    return 0


def _cmd_campaign_watch(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient, ServiceError

    client = ServiceClient(args.url)
    final_state = None
    try:
        for event in client.watch(args.campaign_id):
            _print_event(event, args.json)
            if event.event == "done":
                final_state = event.data.get("state")
    except (ServiceError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return 0 if final_state == "completed" else 1


_CAMPAIGN_COMMANDS = {
    "run": _cmd_campaign_run,
    "status": _cmd_campaign_status,
    "report": _cmd_campaign_report,
    "submit": _cmd_campaign_submit,
    "watch": _cmd_campaign_watch,
}


def _cmd_campaign(args: argparse.Namespace) -> int:
    return _CAMPAIGN_COMMANDS[args.campaign_command](args)


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.server import serve as serve_service

    def banner(server) -> None:
        print(f"campaign service listening on {server.url} "
              f"(store dir {server.manager.store_dir}); Ctrl-C stops it",
              flush=True)

    try:
        return serve_service(args.host, args.port, args.store_dir,
                             ready=banner)
    except OSError as error:
        # e.g. the port is taken or the store dir is not writable
        print(f"error: {error}", file=sys.stderr)
        return 2


def _trace_candidates(args: argparse.Namespace) -> list:
    """Candidate trace-file paths for ``trace``, in resolution order."""
    from repro.telemetry import TRACE_SUFFIX, trace_path_for

    if args.store:
        return [trace_path_for(args.store)]
    if args.campaign and os.path.exists(args.campaign):
        path = args.campaign
        return [path if path.endswith(TRACE_SUFFIX) else trace_path_for(path)]
    if args.campaign:
        return [os.path.join(args.store_dir, f"{args.campaign}{TRACE_SUFFIX}"),
                trace_path_for(f"{args.campaign}.campaign.jsonl")]
    if os.path.isdir(args.store_dir):
        return sorted(
            os.path.join(args.store_dir, name)
            for name in os.listdir(args.store_dir)
            if name.endswith(TRACE_SUFFIX))
    return []


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.telemetry import read_spans, render_traces

    candidates = _trace_candidates(args)
    paths = [path for path in candidates if os.path.exists(path)]
    if args.campaign or args.store:
        # named lookups are a fallback chain: first hit wins (the same
        # file can be reachable through several candidate paths)
        paths = paths[:1]
    if not paths:
        tried = ", ".join(candidates) if candidates else args.store_dir
        print(f"error: no trace file found (looked at: {tried}); traces are "
              f"written next to the campaign store when telemetry is enabled",
              file=sys.stderr)
        return 2
    spans = []
    for path in paths:
        spans.extend(read_spans(path))
    if args.json:
        for span in spans:
            print(json.dumps(span.to_dict(), sort_keys=True))
        return 0
    rendered = render_traces(spans, run_id=args.run)
    if not rendered:
        what = f"run {args.run!r}" if args.run else "any spans"
        print(f"error: no trace matches {what} in "
              f"{', '.join(paths)}", file=sys.stderr)
        return 2
    print(rendered)
    return 0


def _cmd_presets(_: argparse.Namespace) -> int:
    from repro.workflow import available_consumers, available_drivers, preset_rows

    print(f"{'preset':>12} {'grid':>12} {'ppc':>4} {'points':>7} "
          f"{'latent':>7} {'n_rep':>6} {'seed':>6}")
    for row in preset_rows():
        print(f"{row['name']:>12} {row['grid']:>12} {row['particles_per_cell']:>4} "
              f"{row['n_input_points']:>7} {row['latent_dim']:>7} "
              f"{row['n_rep']:>6} {row['seed']:>6}")
    print(f"\ndrivers  : {', '.join(available_drivers())}")
    print(f"consumers: {', '.join(available_consumers())}")
    return 0


def _cmd_fom_scan(_: argparse.Namespace) -> int:
    from repro.perfmodel.fom import FOMScalingModel

    frontier = FOMScalingModel.frontier_calibrated()
    summit = FOMScalingModel.summit_calibrated()
    print(f"{'GPUs':>8} {'Frontier [TUp/s]':>18} {'Summit [TUp/s]':>16}")
    for n in FOMScalingModel.paper_gpu_counts():
        summit_value = summit.fom(n) / 1e12 if n <= 27_648 else float("nan")
        print(f"{n:>8} {frontier.fom(n) / 1e12:>18.2f} {summit_value:>16.2f}")
    print("\npaper reference: 65.3 TeraUpdates/s on full Frontier, "
          "14.7 TeraUpdates/s on Summit")
    return 0


def _cmd_streaming_study(args: argparse.Namespace) -> int:
    from repro.perfmodel.streaming import StreamingScalingStudy

    study = StreamingScalingStudy(bytes_per_node=args.bytes_per_node)
    print(f"{'data plane':>18} {'strategy':>12} {'nodes':>6} {'TB/s':>7} "
          f"{'GB/s/node':>10} {'step [s]':>9}")

    def fmt(value, width, precision):
        return "n/a".rjust(width) if value is None else f"{value:{width}.{precision}f}"

    for row in study.rows():
        print(f"{row['data_plane']:>18} {row['strategy']:>12} {row['nodes']:>6} "
              f"{fmt(row['parallel_tb_per_s'], 7, 1)} "
              f"{fmt(row['per_node_gb_per_s'], 10, 2)} "
              f"{fmt(row['step_time_s'], 9, 2)}")
    return 0


def _cmd_ddp_scan(args: argparse.Namespace) -> int:
    from repro.perfmodel.ddp import DDPWeakScalingModel

    model = DDPWeakScalingModel.paper_calibrated()
    print(f"{'nodes':>6} {'GCDs':>6} {'batch':>6} {'efficiency %':>13} "
          f"{'allreduce %':>12} {'MMD %':>7}")
    for point in model.scan(tuple(args.nodes)):
        print(f"{point.n_nodes:>6} {point.n_gcds:>6} {point.global_batch_size:>6} "
              f"{100 * point.efficiency:>13.1f} {100 * point.allreduce_fraction:>12.1f} "
              f"{100 * point.mmd_fraction:>7.1f}")
    attribution = model.deficit_attribution(max(args.nodes))
    print(f"\ndeficit attribution at {max(args.nodes)} nodes: "
          f"allreduce {100 * attribution['allreduce']:.0f} %, "
          f"MMD {100 * attribution['mmd']:.0f} %")
    return 0


def _cmd_khi_info(_: argparse.Namespace) -> int:
    from repro import constants
    from repro.pic.khi import KHIConfig

    paper = KHIConfig.paper()
    print("Section IV-A KHI setup (paper constants):")
    print(f"  smallest volume      : {'x'.join(str(n) for n in paper.grid_shape)} cells "
          f"on {constants.PAPER_SMALLEST_GPUS} GPUs")
    print(f"  cell size            : {paper.cell_size * 1e6:.1f} um (cubic)")
    print(f"  paper time step      : {constants.PAPER_TIME_STEP * 1e15:.1f} fs")
    print(f"  density              : {constants.PAPER_DENSITY:.1e} 1/m^3")
    print(f"  stream velocity      : beta = {paper.beta}")
    print(f"  particles per cell   : {paper.particles_per_cell}")
    print(f"  macro electrons      : {paper.n_macro_electrons:,}")
    default = KHIConfig()
    print("\nlaptop-scale defaults of this reproduction:")
    print(f"  grid                 : {'x'.join(str(n) for n in default.grid_shape)} cells")
    print(f"  density              : {default.density:.1e} 1/m^3 "
          f"(omega_p * dt = {default.omega_p_dt():.2f})")
    return 0


def _cmd_placement(args: argparse.Namespace) -> int:
    from repro.core.placement import PlacementMode, ResourcePlan
    from repro.perfmodel.streaming import PAPER_BYTES_PER_NODE

    for mode in (PlacementMode.INTRA_NODE, PlacementMode.INTER_NODE):
        plan = ResourcePlan(n_nodes=args.nodes, mode=mode)
        description = plan.describe()
        exchange = plan.exchange_time_per_step(PAPER_BYTES_PER_NODE)
        print(f"{mode.value:>12}: {description}  exchange of 5.86 GB/node: "
              f"{exchange:.3f} s")
    return 0


def _cmd_bench_hotpath(args: argparse.Namespace) -> int:
    from repro.pic.hotpath import BENCH_TINY_GRID, main as hotpath_main

    grid = args.grid if args.grid is not None else BENCH_TINY_GRID
    argv = ["--steps", str(args.steps), "--warmup", str(args.warmup),
            "--repeats", str(args.repeats),
            "--grid", *(str(n) for n in grid),
            "--output-dir", args.output_dir]
    if args.no_persist:
        argv.append("--no-persist")
    return hotpath_main(argv)


def _cmd_bench_campaign(args: argparse.Namespace) -> int:
    from repro.campaign.hotpath import DEFAULT_PRESET, main as campaign_main

    argv = ["--preset", args.preset or DEFAULT_PRESET,
            "--repeats", str(args.repeats),
            "--output-dir", args.output_dir]
    if args.repetitions is not None:
        argv += ["--repetitions", str(args.repetitions)]
    if args.max_workers is not None:
        argv += ["--max-workers", str(args.max_workers)]
    if args.start_method is not None:
        argv += ["--start-method", args.start_method]
    if args.no_persist:
        argv.append("--no-persist")
    return campaign_main(argv)


_COMMANDS = {
    "run": _cmd_run,
    "campaign": _cmd_campaign,
    "serve": _cmd_serve,
    "trace": _cmd_trace,
    "presets": _cmd_presets,
    "fom-scan": _cmd_fom_scan,
    "streaming-study": _cmd_streaming_study,
    "ddp-scan": _cmd_ddp_scan,
    "khi-info": _cmd_khi_info,
    "placement": _cmd_placement,
    "bench-hotpath": _cmd_bench_hotpath,
    "bench-campaign": _cmd_bench_campaign,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    from repro.utils.logging import setup_logging

    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        setup_logging(args.log_level)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    try:
        code = main()
    except BrokenPipeError:
        # e.g. `... campaign report | head`: the reader closed the pipe —
        # not an error worth a traceback
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        code = 0
    sys.exit(code)
