"""An openPMD-like object model for particle-mesh data.

openPMD is the data standard the paper uses to describe simulation output
(meshes and particle records with unit metadata) independently of the
transport backend: the same writer code can target HDF5/JSON files or the
ADIOS2 SST streaming engine.  This subpackage reproduces the object model of
the openPMD-api (Series → Iteration → Mesh / ParticleSpecies → Record →
RecordComponent) with three backends:

* :class:`repro.openpmd.backends.MemoryBackend` — keeps iterations in
  memory (useful for tests and tight loops),
* :class:`repro.openpmd.backends.JSONBackend` — writes one JSON + ``.npz``
  pair per iteration (the classical file-based workflow the paper moves
  away from),
* :class:`repro.openpmd.backends.StreamingBackend` — pushes every closed
  iteration as one step through a :mod:`repro.streaming` writer engine
  (the in-transit workflow of the paper).
"""

from repro.openpmd.records import (Attributable, Mesh, ParticleSpecies, Record,
                                   RecordComponent)
from repro.openpmd.series import Access, Iteration, Series
from repro.openpmd.backends import (Backend, JSONBackend, MemoryBackend,
                                    StreamingBackend)

__all__ = [
    "Access",
    "Attributable",
    "Backend",
    "Iteration",
    "JSONBackend",
    "MemoryBackend",
    "Mesh",
    "ParticleSpecies",
    "Record",
    "RecordComponent",
    "Series",
    "StreamingBackend",
]
