"""Record containers of the openPMD object model.

The hierarchy mirrors the openPMD standard and its reference implementation
(openPMD-api):

* a :class:`RecordComponent` holds one ndarray plus ``unitSI``,
* a :class:`Record` groups components (``position`` → ``x``, ``y``, ``z``),
* a :class:`Mesh` is a record with grid metadata (spacing, axis labels),
* a :class:`ParticleSpecies` groups records (``position``, ``momentum``,
  ``weighting``, ...),
* everything is :class:`Attributable` — carries free-form attributes.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Sequence, Tuple

import numpy as np


class Attributable:
    """Mixin holding openPMD attributes (arbitrary JSON-serialisable values)."""

    def __init__(self) -> None:
        self._attributes: Dict[str, object] = {}

    def set_attribute(self, name: str, value) -> None:
        self._attributes[name] = value

    def get_attribute(self, name: str):
        return self._attributes[name]

    def has_attribute(self, name: str) -> bool:
        return name in self._attributes

    @property
    def attributes(self) -> Dict[str, object]:
        return dict(self._attributes)


class RecordComponent(Attributable):
    """One array-valued component of a record."""

    def __init__(self, name: str) -> None:
        super().__init__()
        self.name = name
        self._data: Optional[np.ndarray] = None
        self.unit_si: float = 1.0

    def store(self, data: np.ndarray, unit_si: float = 1.0) -> "RecordComponent":
        """Attach data (zero-copy for float64 arrays) and its SI conversion factor."""
        self._data = np.asarray(data)
        self.unit_si = float(unit_si)
        self.set_attribute("unitSI", self.unit_si)
        return self

    def load(self) -> np.ndarray:
        """Return the stored array (raises if nothing was stored/received)."""
        if self._data is None:
            raise RuntimeError(f"record component {self.name!r} holds no data")
        return self._data

    def load_si(self) -> np.ndarray:
        """Return the data converted to SI units."""
        return self.load() * self.unit_si

    @property
    def empty(self) -> bool:
        return self._data is None

    @property
    def shape(self) -> Tuple[int, ...]:
        return () if self._data is None else tuple(self._data.shape)

    @property
    def dtype(self):
        return None if self._data is None else self._data.dtype

    @property
    def nbytes(self) -> int:
        return 0 if self._data is None else int(self._data.nbytes)


class Record(Attributable):
    """A named group of components, e.g. ``position`` with x/y/z."""

    def __init__(self, name: str) -> None:
        super().__init__()
        self.name = name
        self._components: Dict[str, RecordComponent] = {}

    def __getitem__(self, component: str) -> RecordComponent:
        if component not in self._components:
            self._components[component] = RecordComponent(component)
        return self._components[component]

    def __contains__(self, component: str) -> bool:
        return component in self._components

    def __iter__(self) -> Iterator[str]:
        return iter(self._components)

    def components(self) -> Dict[str, RecordComponent]:
        return dict(self._components)

    @property
    def nbytes(self) -> int:
        return sum(c.nbytes for c in self._components.values())

    #: openPMD scalar records store their data under this component name.
    SCALAR = "scalar"

    def store_scalar(self, data: np.ndarray, unit_si: float = 1.0) -> RecordComponent:
        """Store a scalar record (single unnamed component)."""
        return self[self.SCALAR].store(data, unit_si)

    def load_scalar(self) -> np.ndarray:
        return self[self.SCALAR].load()


class Mesh(Record):
    """A field record defined on the simulation grid."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.grid_spacing: Tuple[float, ...] = ()
        self.grid_global_offset: Tuple[float, ...] = ()
        self.axis_labels: Tuple[str, ...] = ()

    def set_grid(self, spacing: Sequence[float], axis_labels: Sequence[str] = ("x", "y", "z"),
                 global_offset: Optional[Sequence[float]] = None) -> "Mesh":
        self.grid_spacing = tuple(float(s) for s in spacing)
        self.axis_labels = tuple(axis_labels)
        self.grid_global_offset = tuple(global_offset) if global_offset is not None \
            else (0.0,) * len(self.grid_spacing)
        self.set_attribute("gridSpacing", list(self.grid_spacing))
        self.set_attribute("axisLabels", list(self.axis_labels))
        self.set_attribute("gridGlobalOffset", list(self.grid_global_offset))
        return self


class ParticleSpecies(Attributable):
    """A particle species: a group of records (position, momentum, weighting...)."""

    def __init__(self, name: str) -> None:
        super().__init__()
        self.name = name
        self._records: Dict[str, Record] = {}

    def __getitem__(self, record: str) -> Record:
        if record not in self._records:
            self._records[record] = Record(record)
        return self._records[record]

    def __contains__(self, record: str) -> bool:
        return record in self._records

    def __iter__(self) -> Iterator[str]:
        return iter(self._records)

    def records(self) -> Dict[str, Record]:
        return dict(self._records)

    @property
    def nbytes(self) -> int:
        return sum(r.nbytes for r in self._records.values())
