"""Backends turning closed openPMD iterations into stored or streamed steps.

The openPMD standard is format agnostic; the reference implementation
supports JSON/HDF5/ADIOS2 backends.  Here:

* :class:`MemoryBackend` keeps iterations in a dict (testing, tight loops),
* :class:`JSONBackend` persists them as JSON + ``.npz`` files,
* :class:`StreamingBackend` forwards them through a
  :mod:`repro.streaming` writer/reader engine — the in-transit path.

Serialisation layout (shared by all backends): every record component is a
flat variable named ``meshes/<mesh>/<component>`` or
``particles/<species>/<record>/<component>``, and iteration/record
attributes travel in the step's attribute dictionary.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterator, Optional

import numpy as np

from repro.openpmd.records import Record
from repro.openpmd.series import Iteration
from repro.streaming.engine import (FileReaderEngine, FileWriterEngine,
                                    SSTReaderEngine, SSTWriterEngine)
from repro.streaming.step import Step, StepStatus
from repro.streaming.variable import Block, Variable

SCALAR = Record.SCALAR


def iteration_to_arrays(iteration: Iteration) -> Dict[str, np.ndarray]:
    """Flatten an iteration into ``path -> ndarray``."""
    arrays: Dict[str, np.ndarray] = {}
    for mesh_name, mesh in iteration.meshes.items():
        for comp_name, component in mesh.components().items():
            if component.empty:
                continue
            suffix = "" if comp_name == SCALAR else f"/{comp_name}"
            arrays[f"meshes/{mesh_name}{suffix}"] = component.load()
    for species_name, species in iteration.particles.items():
        for record_name, record in species.records().items():
            for comp_name, component in record.components().items():
                if component.empty:
                    continue
                suffix = "" if comp_name == SCALAR else f"/{comp_name}"
                arrays[f"particles/{species_name}/{record_name}{suffix}"] = component.load()
    return arrays


def iteration_attributes(iteration: Iteration) -> Dict[str, object]:
    return {"iteration": iteration.index, "time": iteration.time, "dt": iteration.dt,
            "timeUnitSI": iteration.time_unit_si}


def arrays_to_iteration(index: int, arrays: Dict[str, np.ndarray],
                        attributes: Dict[str, object]) -> Iteration:
    """Rebuild an :class:`Iteration` from the flattened representation."""
    iteration = Iteration(index)
    iteration.set_time(float(attributes.get("time", 0.0)),
                       float(attributes.get("dt", 0.0)),
                       float(attributes.get("timeUnitSI", 1.0)))
    for path, data in arrays.items():
        parts = path.split("/")
        if parts[0] == "meshes":
            mesh = iteration.get_mesh(parts[1])
            comp = parts[2] if len(parts) > 2 else SCALAR
            mesh[comp].store(data)
        elif parts[0] == "particles":
            species = iteration.get_particles(parts[1])
            record = species[parts[2]]
            comp = parts[3] if len(parts) > 3 else SCALAR
            record[comp].store(data)
        else:
            raise ValueError(f"unknown record path {path!r}")
    return iteration


class Backend:
    """Base class of series backends."""

    def attach(self, series) -> None:
        self.series = series

    def put_iteration(self, iteration: Iteration) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def iterate(self) -> Iterator[Iteration]:  # pragma: no cover - abstract
        raise NotImplementedError

    def close(self) -> None:
        pass


class MemoryBackend(Backend):
    """Keep closed iterations in memory (shared between writer and reader)."""

    def __init__(self) -> None:
        self._store: Dict[int, Iteration] = {}
        self._closed = False

    def put_iteration(self, iteration: Iteration) -> None:
        self._store[iteration.index] = iteration

    def iterate(self) -> Iterator[Iteration]:
        for index in sorted(self._store):
            yield self._store[index]

    def close(self) -> None:
        self._closed = True

    def __len__(self) -> int:
        return len(self._store)


class JSONBackend(Backend):
    """Persist iterations as ``<dir>/iteration_<n>.json`` + ``.npz`` pairs."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)

    def put_iteration(self, iteration: Iteration) -> None:
        arrays = iteration_to_arrays(iteration)
        attrs = iteration_attributes(iteration)
        safe = {path.replace("/", "__"): data for path, data in arrays.items()}
        np.savez(os.path.join(self.directory, f"iteration_{iteration.index:06d}.npz"), **safe)
        with open(os.path.join(self.directory, f"iteration_{iteration.index:06d}.json"),
                  "w", encoding="utf-8") as handle:
            json.dump({"attributes": attrs, "paths": list(arrays)}, handle)

    def iterate(self) -> Iterator[Iteration]:
        indices = sorted(int(f[len("iteration_"):-len(".json")])
                         for f in os.listdir(self.directory) if f.endswith(".json"))
        for index in indices:
            with open(os.path.join(self.directory, f"iteration_{index:06d}.json"),
                      encoding="utf-8") as handle:
                meta = json.load(handle)
            stored = np.load(os.path.join(self.directory, f"iteration_{index:06d}.npz"))
            arrays = {path: stored[path.replace("/", "__")] for path in meta["paths"]}
            yield arrays_to_iteration(index, arrays, meta["attributes"])


class StreamingBackend(Backend):
    """Forward iterations through a streaming writer/reader engine.

    Construct it with a *writer* engine for CREATE series and with a
    *reader* engine for READ_LINEAR series.  Iterations read from a stream
    are yielded exactly once and then dropped — the defining property of the
    in-transit workflow.
    """

    def __init__(self, writer: Optional[SSTWriterEngine] = None,
                 reader: Optional[SSTReaderEngine] = None,
                 rank: int = 0) -> None:
        if (writer is None) == (reader is None):
            raise ValueError("provide exactly one of writer or reader")
        self.writer = writer
        self.reader = reader
        self.rank = int(rank)

    # -- writer ----------------------------------------------------------- #
    def put_iteration(self, iteration: Iteration) -> None:
        if self.writer is None:
            raise RuntimeError("this backend was configured for reading")
        arrays = iteration_to_arrays(iteration)
        self.writer.begin_step()
        for path, data in arrays.items():
            self.writer.put(path, data, rank=self.rank)
        self.writer.put_attributes(iteration_attributes(iteration))
        self.writer.end_step()

    # -- reader ------------------------------------------------------------- #
    def iterate(self) -> Iterator[Iteration]:
        if self.reader is None:
            raise RuntimeError("this backend was configured for writing")
        while True:
            status = self.reader.begin_step()
            if status is not StepStatus.OK:
                return
            attributes = self.reader.attributes()
            arrays = {name: self.reader.get(name)
                      for name in self.reader.available_variables()}
            self.reader.end_step()
            index = int(attributes.get("iteration", 0))
            yield arrays_to_iteration(index, arrays, attributes)

    def close(self) -> None:
        if self.writer is not None:
            self.writer.close()
        if self.reader is not None:
            self.reader.close()
