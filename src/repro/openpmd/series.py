"""Series and Iteration: the top of the openPMD hierarchy.

A writer creates iterations, fills meshes/particles and *closes* them; a
closed iteration is handed to the backend, which either stores it (memory /
JSON) or streams it as one step (SST-style).  A reader iterates over
available iterations in order; with a streaming backend each iteration can
only be read once and is dropped afterwards — exactly the "data is produced
on demand and discarded after being used for training" constraint that
motivates the paper's continual-learning approach.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterator, Optional

from repro.openpmd.records import Attributable, Mesh, ParticleSpecies


class Access(enum.Enum):
    """Access modes of a :class:`Series` (subset of openPMD-api's)."""

    CREATE = "create"
    READ_LINEAR = "read_linear"


class Iteration(Attributable):
    """One simulation time step's worth of meshes and particle records."""

    def __init__(self, index: int) -> None:
        super().__init__()
        self.index = int(index)
        self.time: float = 0.0
        self.dt: float = 0.0
        self.time_unit_si: float = 1.0
        self.meshes: Dict[str, Mesh] = {}
        self.particles: Dict[str, ParticleSpecies] = {}
        self._closed = False

    # -- structure -------------------------------------------------------- #
    def get_mesh(self, name: str) -> Mesh:
        if name not in self.meshes:
            self.meshes[name] = Mesh(name)
        return self.meshes[name]

    def get_particles(self, name: str) -> ParticleSpecies:
        if name not in self.particles:
            self.particles[name] = ParticleSpecies(name)
        return self.particles[name]

    def set_time(self, time: float, dt: float, time_unit_si: float = 1.0) -> "Iteration":
        self.time = float(time)
        self.dt = float(dt)
        self.time_unit_si = float(time_unit_si)
        self.set_attribute("time", self.time)
        self.set_attribute("dt", self.dt)
        self.set_attribute("timeUnitSI", self.time_unit_si)
        return self

    # -- lifecycle ---------------------------------------------------------- #
    @property
    def closed(self) -> bool:
        return self._closed

    def mark_closed(self) -> None:
        self._closed = True

    @property
    def nbytes(self) -> int:
        total = sum(m.nbytes for m in self.meshes.values())
        total += sum(p.nbytes for p in self.particles.values())
        return total


class Series:
    """A stream or store of iterations.

    Parameters
    ----------
    name:
        Series name (used as file prefix / stream name).
    access:
        :attr:`Access.CREATE` for writers, :attr:`Access.READ_LINEAR` for
        readers.
    backend:
        A :class:`repro.openpmd.backends.Backend` instance.  The backend
        decides whether closing an iteration writes a file, keeps it in
        memory or streams it in-transit.
    """

    def __init__(self, name: str, access: Access, backend) -> None:
        self.name = name
        self.access = access
        self.backend = backend
        self._iterations: Dict[int, Iteration] = {}
        self._closed_indices: set = set()
        backend.attach(self)

    # -- writer API ---------------------------------------------------------- #
    def write_iteration(self, index: int) -> Iteration:
        """Create (or fetch the still-open) iteration ``index`` for writing."""
        if self.access is not Access.CREATE:
            raise RuntimeError("write_iteration requires CREATE access")
        if index in self._closed_indices:
            raise RuntimeError(f"iteration {index} was already closed")
        iteration = self._iterations.setdefault(index, Iteration(index))
        return iteration

    def close_iteration(self, index: int) -> None:
        """Close an iteration: hand it to the backend and drop the local copy."""
        if index not in self._iterations:
            raise KeyError(f"iteration {index} is not open")
        iteration = self._iterations.pop(index)
        iteration.mark_closed()
        self._closed_indices.add(index)
        self.backend.put_iteration(iteration)

    # -- reader API ------------------------------------------------------------ #
    def read_iterations(self) -> Iterator[Iteration]:
        """Iterate over available iterations in order (blocking on streams)."""
        if self.access is not Access.READ_LINEAR:
            raise RuntimeError("read_iterations requires READ_LINEAR access")
        yield from self.backend.iterate()

    # -- common ------------------------------------------------------------------ #
    @property
    def open_iterations(self) -> Dict[int, Iteration]:
        return dict(self._iterations)

    def close(self) -> None:
        """Close the series and its backend (ends the stream for readers)."""
        self.backend.close()
