"""repro — reproduction of "The Artificial Scientist: in-transit Machine
Learning of Plasma Simulations" (Kelling et al., IPDPS 2025).

The package is organised as a set of substrates (PIC simulation, radiation
diagnostics, openPMD data model, SST-like streaming, a NumPy deep-learning
core) and the paper's primary contribution on top of them: the loosely
coupled, in-transit learning workflow (:mod:`repro.core`) with its VAE+INN
model (:mod:`repro.models`) and experience-replay continual learning
(:mod:`repro.continual`).

Subpackages are imported lazily so that e.g. using only the PIC simulator
does not pull in the ML stack.
"""

from __future__ import annotations

import importlib
from typing import TYPE_CHECKING

__version__ = "1.0.0"

_SUBPACKAGES = (
    "analysis",
    "campaign",
    "constants",
    "continual",
    "core",
    "mlcore",
    "models",
    "openpmd",
    "perfmodel",
    "pic",
    "radiation",
    "service",
    "streaming",
    "utils",
    "workflow",
)

__all__ = list(_SUBPACKAGES) + ["__version__"]


def __getattr__(name: str):
    if name in _SUBPACKAGES:
        module = importlib.import_module(f"repro.{name}")
        globals()[name] = module
        return module
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


def __dir__():
    return sorted(__all__)


if TYPE_CHECKING:  # pragma: no cover
    from repro import (analysis, campaign, constants, continual, core,  # noqa: F401
                       mlcore, models, openpmd, perfmodel, pic, radiation,
                       service, streaming, utils, workflow)
