"""The variational auto-encoder combining encoder and decoder (Fig. 2b).

The paper chooses a *variational* AE rather than a plain AE because the INN
will never reproduce latent vectors exactly on its backward pass; training
the decoder on sampled (noisy) latents makes it robust against those
variations (Section IV-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.mlcore.module import Module
from repro.mlcore.tensor import Tensor
from repro.models.config import ModelConfig
from repro.models.decoder import PointCloudDecoder
from repro.models.encoder import PointNetEncoder
from repro.utils.rng import RandomState, seeded_rng


class VariationalAutoEncoder(Module):
    """Encoder + reparameterised sampling + decoder."""

    def __init__(self, config: ModelConfig, rng: RandomState = None) -> None:
        super().__init__()
        rng = seeded_rng(rng)
        self.config = config
        self.encoder = PointNetEncoder(config, rng=rng)
        self.decoder = PointCloudDecoder(config, rng=rng)
        self._sample_rng = seeded_rng(int(rng.integers(0, 2**31 - 1)))

    def encode(self, point_cloud: Tensor) -> Tuple[Tensor, Tensor]:
        """Return ``(mu, log_var)`` of the latent distribution."""
        return self.encoder(point_cloud)

    def reparameterize(self, mu: Tensor, log_var: Tensor,
                       sample: Optional[bool] = None) -> Tensor:
        """Draw ``z = mu + sigma * eps``; deterministic (``z = mu``) in eval mode."""
        if sample is None:
            sample = self.training
        if not sample:
            return mu
        eps = self._sample_rng.standard_normal(size=mu.shape)
        sigma = (log_var * 0.5).exp()
        return mu + sigma * Tensor(eps)

    def decode(self, latent: Tensor) -> Tensor:
        return self.decoder(latent)

    def forward(self, point_cloud: Tensor) -> Tuple[Tensor, Tensor, Tensor, Tensor]:
        """Full pass: returns ``(reconstruction, mu, log_var, z)``."""
        mu, log_var = self.encode(point_cloud)
        z = self.reparameterize(mu, log_var)
        reconstruction = self.decode(z)
        return reconstruction, mu, log_var, z
