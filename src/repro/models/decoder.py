"""Point-cloud decoder (cyan block of Fig. 7).

A single fully connected layer transforms the latent vector into a small
voxel grid (paper: 1024 features reshaped to ``(4, 4, 4, 16)``), which 3D
deconvolutions with kernel size 2³ and stride 2³ upsample to the output
point cloud (paper: 4096 particles × 6 features).
"""

from __future__ import annotations

import numpy as np

from repro.mlcore.layers import ConvTranspose3d, Linear, ReLU
from repro.mlcore.module import Module
from repro.mlcore.tensor import Tensor
from repro.models.config import ModelConfig
from repro.utils.rng import RandomState, seeded_rng


class PointCloudDecoder(Module):
    """Map latent vectors ``(B, latent_dim)`` to point clouds ``(B, M, point_dim)``."""

    def __init__(self, config: ModelConfig, rng: RandomState = None) -> None:
        super().__init__()
        rng = seeded_rng(rng)
        self.config = config
        d, h, w = config.decoder_grid
        first_channels = config.decoder_channels[0]
        self.grid_size = (d, h, w)
        self.first_channels = first_channels
        self.fc = Linear(config.latent_dim, d * h * w * first_channels, rng=rng)
        self.activation = ReLU()
        deconvs = []
        for c_in, c_out in zip(config.decoder_channels[:-1], config.decoder_channels[1:]):
            deconvs.append(ConvTranspose3d(c_in, c_out, kernel_size=2, rng=rng))
        # register the deconvolution stages as sub-modules
        from repro.mlcore.layers import ModuleList
        self.deconvs = ModuleList(deconvs)

    def forward(self, latent: Tensor) -> Tensor:
        if latent.ndim != 2 or latent.shape[-1] != self.config.latent_dim:
            raise ValueError(f"expected latent of shape (B, {self.config.latent_dim})")
        b = latent.shape[0]
        d, h, w = self.grid_size
        voxels = self.activation(self.fc(latent)).reshape(b, d, h, w, self.first_channels)
        for i, deconv in enumerate(self.deconvs):
            voxels = deconv(voxels)
            if i < len(self.deconvs) - 1:
                voxels = voxels.relu()
        b_, dd, hh, ww, c = voxels.shape
        return voxels.reshape(b_, dd * hh * ww, c)

    @property
    def n_output_points(self) -> int:
        return self.config.n_output_points
