"""Invertible neural network (violet block of Fig. 7).

Built from Glow-style affine coupling blocks (Kingma & Dhariwal 2018) with
MLP sub-networks, following the inverse-problem framework of Ardizzone et
al. (2018): the forward pass maps the (data-defined) latent vector z to
``[y, N]`` where ``y`` is trained to match the observed radiation spectrum
and ``N`` to follow a standard normal; the backward pass maps an observed
spectrum plus a normal sample back to a latent vector, from which the VAE
decoder generates particle dynamics — one sample from the posterior of the
ill-posed inverse problem per draw of ``N``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.mlcore.layers import MLP, ModuleList
from repro.mlcore.module import Module
from repro.mlcore.tensor import Tensor, concatenate
from repro.models.config import ModelConfig
from repro.utils.rng import RandomState, seeded_rng


class GlowCouplingBlock(Module):
    """One affine coupling block operating on vectors of size ``dim``.

    The input is split into two halves; each half is scaled and shifted by
    an MLP of the other half.  The scale is soft-clamped with
    ``exp(clamp * tanh(s))`` for numerical stability (as in the FrEIA
    implementation used with PyTorch).
    """

    def __init__(self, dim: int, hidden: Tuple[int, ...] = (64,), clamp: float = 2.0,
                 rng: RandomState = None) -> None:
        super().__init__()
        if dim < 2 or dim % 2 != 0:
            raise ValueError("dim must be an even number >= 2")
        rng = seeded_rng(rng)
        self.dim = int(dim)
        self.half = self.dim // 2
        self.clamp = float(clamp)
        self.subnet1 = MLP((self.half, *hidden, 2 * self.half), rng=rng)
        self.subnet2 = MLP((self.half, *hidden, 2 * self.half), rng=rng)

    # -- helpers ------------------------------------------------------------ #
    def _scale_shift(self, subnet: MLP, x: Tensor) -> Tuple[Tensor, Tensor]:
        params = subnet(x)
        s = params[:, : self.half]
        t = params[:, self.half:]
        scale = (s.tanh() * self.clamp)
        return scale, t

    # -- forward / inverse ---------------------------------------------------- #
    def forward(self, x: Tensor) -> Tensor:
        x1 = x[:, : self.half]
        x2 = x[:, self.half:]
        scale1, shift1 = self._scale_shift(self.subnet1, x2)
        y1 = x1 * scale1.exp() + shift1
        scale2, shift2 = self._scale_shift(self.subnet2, y1)
        y2 = x2 * scale2.exp() + shift2
        return concatenate([y1, y2], axis=1)

    def inverse(self, y: Tensor) -> Tensor:
        y1 = y[:, : self.half]
        y2 = y[:, self.half:]
        scale2, shift2 = self._scale_shift(self.subnet2, y1)
        x2 = (y2 - shift2) * (-scale2).exp()
        scale1, shift1 = self._scale_shift(self.subnet1, x2)
        x1 = (y1 - shift1) * (-scale1).exp()
        return concatenate([x1, x2], axis=1)

    def log_det_jacobian(self, x: Tensor) -> Tensor:
        """Log-determinant of the forward Jacobian (per sample)."""
        x2 = x[:, self.half:]
        scale1, _ = self._scale_shift(self.subnet1, x2)
        y1 = x[:, : self.half] * scale1.exp() + self._scale_shift(self.subnet1, x2)[1]
        scale2, _ = self._scale_shift(self.subnet2, y1)
        return scale1.sum(axis=1) + scale2.sum(axis=1)


class _Permutation(Module):
    """Fixed random permutation of the feature axis (invertible, no parameters)."""

    def __init__(self, dim: int, rng: RandomState = None) -> None:
        super().__init__()
        rng = seeded_rng(rng)
        self.permutation = rng.permutation(dim)
        self.inverse_permutation = np.argsort(self.permutation)

    def forward(self, x: Tensor) -> Tensor:
        return x[:, self.permutation]

    def inverse(self, x: Tensor) -> Tensor:
        return x[:, self.inverse_permutation]


class InvertibleNetwork(Module):
    """A stack of permutation + coupling blocks with exact inverse.

    The information volume is constant throughout the network (a defining
    property of flow models): input and output both have ``latent_dim``
    entries.  :meth:`split_output` separates the forward output into the
    predicted spectrum encoding and the normal latent part according to the
    model configuration.
    """

    def __init__(self, config: ModelConfig, rng: RandomState = None) -> None:
        super().__init__()
        rng = seeded_rng(rng)
        self.config = config
        blocks: List[Module] = []
        permutations: List[Module] = []
        for _ in range(config.inn_blocks):
            permutations.append(_Permutation(config.latent_dim, rng=rng))
            blocks.append(GlowCouplingBlock(config.latent_dim, hidden=config.inn_hidden,
                                            rng=rng))
        self.blocks = ModuleList(blocks)
        self.permutations = ModuleList(permutations)

    # -- passes --------------------------------------------------------------- #
    def forward(self, z: Tensor) -> Tensor:
        if z.ndim != 2 or z.shape[-1] != self.config.latent_dim:
            raise ValueError(f"expected input of shape (B, {self.config.latent_dim})")
        out = z
        for permutation, block in zip(self.permutations, self.blocks):
            out = block(permutation(out))
        return out

    def inverse(self, y: Tensor) -> Tensor:
        if y.ndim != 2 or y.shape[-1] != self.config.latent_dim:
            raise ValueError(f"expected input of shape (B, {self.config.latent_dim})")
        out = y
        for permutation, block in zip(reversed(list(self.permutations)),
                                      reversed(list(self.blocks))):
            out = permutation.inverse(block.inverse(out))
        return out

    # -- semantic split ---------------------------------------------------------- #
    def split_output(self, forward_output: Tensor) -> Tuple[Tensor, Tensor]:
        """Split a forward output into ``(spectrum_prediction, normal_latent)``."""
        s = self.config.spectrum_dim
        return forward_output[:, :s], forward_output[:, s:]

    def assemble_condition(self, spectrum: Tensor, normal_sample: Tensor) -> Tensor:
        """Concatenate an observed spectrum and a normal draw for the backward pass."""
        if spectrum.shape[-1] != self.config.spectrum_dim:
            raise ValueError(f"spectrum must have {self.config.spectrum_dim} entries")
        if normal_sample.shape[-1] != self.config.normal_dim:
            raise ValueError(f"normal sample must have {self.config.normal_dim} entries")
        return concatenate([spectrum, normal_sample], axis=1)
