"""PointNet-style encoder (light green block of Fig. 7).

6-dimensional vectors (positions and momenta) of the particles are fed
through 1×1 convolutions applied to every particle separately, followed by a
max pooling over the particle axis to obtain a transposition-invariant
feature set, which two MLP heads turn into the mean µ and log-variance of
the latent distribution.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.mlcore.layers import MLP, MaxPoolPoints, PointwiseConv, ReLU, Sequential
from repro.mlcore.module import Module
from repro.mlcore.tensor import Tensor
from repro.models.config import ModelConfig
from repro.utils.rng import RandomState, seeded_rng


class PointNetEncoder(Module):
    """Map a batch of point clouds ``(B, N, point_dim)`` to ``(mu, log_var)``."""

    def __init__(self, config: ModelConfig, rng: RandomState = None) -> None:
        super().__init__()
        rng = seeded_rng(rng)
        self.config = config
        layers = []
        channels = (config.point_dim,) + tuple(config.encoder_channels)
        for c_in, c_out in zip(channels[:-1], channels[1:]):
            layers.append(PointwiseConv(c_in, c_out, rng=rng))
            layers.append(ReLU())
        self.point_features = Sequential(*layers)
        self.pool = MaxPoolPoints(axis=1)
        feature_dim = channels[-1]
        self.mu_head = MLP((feature_dim, config.encoder_head_hidden, config.latent_dim),
                           rng=rng)
        self.log_var_head = MLP((feature_dim, config.encoder_head_hidden, config.latent_dim),
                                rng=rng)

    def forward(self, point_cloud: Tensor) -> Tuple[Tensor, Tensor]:
        if point_cloud.ndim != 3 or point_cloud.shape[-1] != self.config.point_dim:
            raise ValueError(
                f"expected point clouds of shape (B, N, {self.config.point_dim})")
        features = self.point_features(point_cloud)     # (B, N, C)
        pooled = self.pool(features)                     # (B, C)
        mu = self.mu_head(pooled)
        log_var = self.log_var_head(pooled).clip(-10.0, 10.0)
        return mu, log_var

    def global_features(self, point_cloud: Tensor) -> Tensor:
        """Return the pooled, transposition-invariant feature vector (B, C)."""
        return self.pool(self.point_features(point_cloud))
