"""The paper's machine-learning architecture (Fig. 2 / Fig. 7).

Three blocks integrate into one model:

* a PointNet-style **encoder** mapping a particle point cloud (positions +
  momenta) to the mean and variance of a latent vector,
* a 3D-deconvolution **decoder** reconstructing a point cloud from the
  latent vector (encoder + decoder = the VAE of Fig. 2b),
* an **INN** built from Glow coupling blocks whose forward pass maps the
  latent vector to ``[predicted radiation spectrum, normal latent]``
  (Fig. 2c, the surrogate) and whose backward pass maps
  ``[observed spectrum, normal sample]`` back to a latent vector and thus —
  through the decoder — to particle dynamics (Fig. 2a, the inversion).

The default dimensions are scaled down so the whole pipeline trains within
seconds; :func:`repro.models.config.paper_config` restores the paper's
numbers (3·10⁴ particles, 608 features, 544-dimensional latent, four Glow
blocks with → 272 → 256 → 544 sub-networks).
"""

from repro.models.config import ModelConfig, paper_config, small_config
from repro.models.encoder import PointNetEncoder
from repro.models.decoder import PointCloudDecoder
from repro.models.vae import VariationalAutoEncoder
from repro.models.inn import GlowCouplingBlock, InvertibleNetwork
from repro.models.model import ArtificialScientistModel, ModelOutput
from repro.models.losses import CombinedLoss, LossWeights

__all__ = [
    "ModelConfig",
    "paper_config",
    "small_config",
    "PointNetEncoder",
    "PointCloudDecoder",
    "VariationalAutoEncoder",
    "GlowCouplingBlock",
    "InvertibleNetwork",
    "ArtificialScientistModel",
    "ModelOutput",
    "CombinedLoss",
    "LossWeights",
]
