"""Model configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple


@dataclass(frozen=True)
class ModelConfig:
    """Dimensions of the VAE + INN architecture.

    Attributes
    ----------
    n_input_points:
        Particles per input point cloud (paper: 3·10⁴).
    point_dim:
        Per-particle features — 3 positions + 3 momenta.
    encoder_channels:
        Channel progression of the 1×1 convolutions (paper:
        6 → 16 → 32 → 64 → 128 → 256 → 608).
    encoder_head_hidden:
        Hidden width of the two MLP heads producing µ and log σ² (paper: 544).
    latent_dim:
        Dimension of the latent vector z (paper: 544).  Must be even (the
        Glow coupling blocks split it in half).
    decoder_grid:
        Spatial shape of the voxel grid the decoder starts from (paper: 4³).
    decoder_channels:
        Channel progression of the 3D deconvolutions (paper: 16 → 8 → 6);
        each stage doubles every spatial dimension, so the paper's decoder
        outputs 16³ = 4096 particles with 6 features each.
    spectrum_dim:
        Length of the encoded radiation spectrum.  The INN's forward output
        is split into ``[spectrum_dim | latent_dim - spectrum_dim]``.
    inn_blocks:
        Number of Glow coupling blocks (paper: 4).
    inn_hidden:
        Hidden widths of the coupling sub-network MLPs (paper: 272 → 256 →
        544, chosen to form a bottleneck of powers of two).
    """

    n_input_points: int = 128
    point_dim: int = 6
    encoder_channels: Tuple[int, ...] = (16, 32, 64)
    encoder_head_hidden: int = 48
    latent_dim: int = 32
    decoder_grid: Tuple[int, int, int] = (2, 2, 2)
    decoder_channels: Tuple[int, ...] = (16, 8, 6)
    spectrum_dim: int = 16
    inn_blocks: int = 4
    inn_hidden: Tuple[int, ...] = (32, 32)

    def __post_init__(self) -> None:
        if self.latent_dim % 2 != 0:
            raise ValueError("latent_dim must be even (coupling blocks split it in half)")
        if not 0 < self.spectrum_dim < self.latent_dim:
            raise ValueError("spectrum_dim must lie strictly between 0 and latent_dim")
        if self.decoder_channels[-1] != self.point_dim:
            raise ValueError("the last decoder channel count must equal point_dim")
        if self.n_input_points < 1:
            raise ValueError("n_input_points must be positive")

    @property
    def n_output_points(self) -> int:
        """Number of points the decoder generates."""
        upsampling = 2 ** (len(self.decoder_channels) - 1)
        d, h, w = self.decoder_grid
        return d * h * w * upsampling ** 3

    @property
    def normal_dim(self) -> int:
        """Dimension of the INN's normal latent ``N`` (forward output tail)."""
        return self.latent_dim - self.spectrum_dim


def small_config(spectrum_dim: int = 16) -> ModelConfig:
    """A configuration small enough for tests and laptop examples."""
    return ModelConfig(spectrum_dim=spectrum_dim)


def paper_config() -> ModelConfig:
    """The architecture exactly as described in Section IV-C of the paper."""
    return ModelConfig(
        n_input_points=30_000,
        point_dim=6,
        encoder_channels=(16, 32, 64, 128, 256, 608),
        encoder_head_hidden=544,
        latent_dim=544,
        decoder_grid=(4, 4, 4),
        decoder_channels=(16, 8, 6),
        spectrum_dim=128,
        inn_blocks=4,
        inn_hidden=(272, 256, 544),
    )
