"""The full Artificial-Scientist model: VAE + INN (Fig. 7).

One training pass produces everything the five-term loss needs:

1. encode the particle point cloud → (µ, log σ²), sample z,
2. decode z → reconstructed point cloud (``L_CD``, ``L_KL``),
3. INN forward on z → [predicted spectrum I', normal output N']
   (``L_MSE(I', I)``, ``L_MMD(N, N')``),
4. INN backward on [observed spectrum I, fresh normal draw N] → z'
   (``L_MMD(z, z')``).

At inference time, :meth:`predict_particles_from_radiation` runs the
backward pass for several normal draws and decodes each resulting latent —
sampling from the posterior of the ill-posed inverse problem.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.mlcore.module import Module, Parameter
from repro.mlcore.tensor import Tensor, no_grad
from repro.models.config import ModelConfig
from repro.models.inn import InvertibleNetwork
from repro.models.vae import VariationalAutoEncoder
from repro.utils.rng import RandomState, seeded_rng


@dataclass
class ModelOutput:
    """All tensors produced by one full training pass."""

    reconstruction: Tensor        #: decoded point cloud (B, M, point_dim)
    mu: Tensor                    #: encoder mean (B, latent_dim)
    log_var: Tensor               #: encoder log variance (B, latent_dim)
    latent: Tensor                #: sampled latent z (B, latent_dim)
    spectrum_prediction: Tensor   #: INN forward spectrum part (B, spectrum_dim)
    normal_prediction: Tensor     #: INN forward normal part N' (B, normal_dim)
    normal_reference: Tensor      #: fresh standard-normal draw N (B, normal_dim)
    latent_backward: Tensor       #: INN backward latent z' (B, latent_dim)


class ArtificialScientistModel(Module):
    """VAE + INN with the paper's three tasks (inversion, compression, surrogate)."""

    def __init__(self, config: Optional[ModelConfig] = None, rng: RandomState = None) -> None:
        super().__init__()
        rng = seeded_rng(rng)
        self.config = config or ModelConfig()
        self.vae = VariationalAutoEncoder(self.config, rng=rng)
        self.inn = InvertibleNetwork(self.config, rng=rng)
        self._rng = seeded_rng(int(rng.integers(0, 2**31 - 1)))

    # -- parameter groups (for the separate l_VAE / l_INN learning rates) -- #
    def vae_parameters(self) -> List[Parameter]:
        return self.vae.parameters()

    def inn_parameters(self) -> List[Parameter]:
        return self.inn.parameters()

    # -- training pass ------------------------------------------------------ #
    def forward(self, point_cloud: Tensor, spectrum: Tensor) -> ModelOutput:
        """One full pass producing every quantity of the Eq. (1) loss."""
        point_cloud = point_cloud if isinstance(point_cloud, Tensor) else Tensor(point_cloud)
        spectrum = spectrum if isinstance(spectrum, Tensor) else Tensor(spectrum)
        if spectrum.ndim != 2 or spectrum.shape[-1] != self.config.spectrum_dim:
            raise ValueError(f"spectrum must have shape (B, {self.config.spectrum_dim})")
        reconstruction, mu, log_var, z = self.vae(point_cloud)

        forward_out = self.inn(z)
        spectrum_prediction, normal_prediction = self.inn.split_output(forward_out)

        batch = point_cloud.shape[0]
        normal_reference = Tensor(self._rng.standard_normal((batch, self.config.normal_dim)))
        backward_input = self.inn.assemble_condition(spectrum, normal_reference)
        latent_backward = self.inn.inverse(backward_input)

        return ModelOutput(reconstruction=reconstruction, mu=mu, log_var=log_var,
                           latent=z, spectrum_prediction=spectrum_prediction,
                           normal_prediction=normal_prediction,
                           normal_reference=normal_reference,
                           latent_backward=latent_backward)

    # -- inference ------------------------------------------------------------ #
    def predict_particles_from_radiation(self, spectrum: np.ndarray,
                                         n_samples: int = 8) -> np.ndarray:
        """Sample particle point clouds consistent with an observed spectrum.

        Parameters
        ----------
        spectrum:
            Encoded spectrum of shape ``(spectrum_dim,)`` or
            ``(B, spectrum_dim)``.
        n_samples:
            Posterior samples per spectrum (each uses an independent normal
            draw for the INN's latent input).

        Returns
        -------
        Array of shape ``(B, n_samples, M, point_dim)``.
        """
        spectrum = np.atleast_2d(np.asarray(spectrum, dtype=np.float64))
        batch = spectrum.shape[0]
        outputs = np.zeros((batch, n_samples, self.config.n_output_points,
                            self.config.point_dim))
        with no_grad():
            for sample in range(n_samples):
                normal = Tensor(self._rng.standard_normal((batch, self.config.normal_dim)))
                backward_input = self.inn.assemble_condition(Tensor(spectrum), normal)
                latent = self.inn.inverse(backward_input)
                clouds = self.vae.decode(latent)
                outputs[:, sample] = clouds.numpy()
        return outputs

    def predict_radiation_from_particles(self, point_cloud: np.ndarray) -> np.ndarray:
        """Surrogate forward model: particle dynamics → predicted spectrum encoding."""
        point_cloud = np.asarray(point_cloud, dtype=np.float64)
        if point_cloud.ndim == 2:
            point_cloud = point_cloud[None]
        with no_grad():
            mu, log_var = self.vae.encode(Tensor(point_cloud))
            z = self.vae.reparameterize(mu, log_var, sample=False)
            forward_out = self.inn(z)
            spectrum_prediction, _ = self.inn.split_output(forward_out)
        return spectrum_prediction.numpy()

    def encode_to_latent(self, point_cloud: np.ndarray) -> np.ndarray:
        """Deterministic latent representation (µ) of particle point clouds."""
        point_cloud = np.asarray(point_cloud, dtype=np.float64)
        if point_cloud.ndim == 2:
            point_cloud = point_cloud[None]
        with no_grad():
            mu, _ = self.vae.encode(Tensor(point_cloud))
        return mu.numpy()
